//! Hierarchical encoding (paper §2.2, Fig. 3, Alg. 1).
//!
//! Targets column pairs with a parent→child hierarchy such as
//! (`city`, `zip-code`): the child has many distinct values globally but only
//! a few per parent. The encoder collects, per parent dictionary code, the
//! distinct child values into a flattened `values` array indexed by an
//! `offsets` array; each row then stores only the child's index *within its
//! parent's group*, whose bit-width is ⌈log₂ max-group-size⌉.
//!
//! Decompression is Alg. 1 verbatim:
//! ```text
//! ref  ← Fetch(city)[tid]                  (parent dict code)
//! diff ← Fetch(zip-code)[tid]              (per-row group index)
//! return zip_codes[offset[ref] + diff]
//! ```

use bytes::{Buf, BufMut};
use corra_columnar::aggregate::{IntAggState, StrAggState};
use corra_columnar::bitpack::BitPackedVec;
use corra_columnar::error::{Error, Result};
use corra_columnar::predicate::IntRange;
use corra_columnar::selection::SelectionVector;
use corra_columnar::stats::ZoneMap;
use corra_columnar::strings::{StringDictBuilder, StringPool};
use rustc_hash::FxHashMap;

/// Hierarchically encoded column with integer child values
/// (e.g. zip codes w.r.t. city, IPs w.r.t. country).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierInt {
    /// Per-row index of the child value within its parent's group.
    codes: BitPackedVec,
    /// Distinct child values, grouped by parent code (metadata array
    /// "zip_codes" in Fig. 3).
    values: Vec<i64>,
    /// Start of each parent's group in `values` (metadata array "offsets");
    /// `offsets.len() == n_parents + 1`.
    offsets: Vec<u32>,
}

impl HierInt {
    /// Encodes `child` w.r.t. parent dictionary codes `parent_codes`
    /// (values in `0..n_parents`).
    ///
    /// The paper's compression pass: *"we maintain a hashtable of cities on
    /// the fly and their corresponding zip-codes"* — here a per-parent map
    /// from child value to group index.
    pub fn encode(child: &[i64], parent_codes: &[u32], n_parents: usize) -> Result<Self> {
        if child.len() != parent_codes.len() {
            return Err(Error::LengthMismatch {
                left: child.len(),
                right: parent_codes.len(),
            });
        }
        // Per-parent insertion-ordered distinct child values.
        let mut groups: Vec<Vec<i64>> = vec![Vec::new(); n_parents];
        let mut index: FxHashMap<(u32, i64), u32> = FxHashMap::default();
        let mut codes = Vec::with_capacity(child.len());
        for (&c, &p) in child.iter().zip(parent_codes) {
            let p_us = p as usize;
            if p_us >= n_parents {
                return Err(Error::IndexOutOfBounds {
                    index: p_us,
                    len: n_parents,
                });
            }
            let code = *index.entry((p, c)).or_insert_with(|| {
                let g = &mut groups[p_us];
                g.push(c);
                (g.len() - 1) as u32
            });
            codes.push(code as u64);
        }
        // Flatten groups into values + offsets in a single pass (paper: "can
        // then be computed once the compression has been finalized, in a
        // single pass as well").
        let total: usize = groups.iter().map(Vec::len).sum();
        let mut values = Vec::with_capacity(total);
        let mut offsets = Vec::with_capacity(n_parents + 1);
        offsets.push(0u32);
        for g in &groups {
            values.extend_from_slice(g);
            offsets.push(values.len() as u32);
        }
        Ok(Self {
            codes: BitPackedVec::pack_minimal(&codes),
            values,
            offsets,
        })
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Whether the column is empty.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Per-row code bit width (⌈log₂ max-group-size⌉).
    pub fn bits(&self) -> u8 {
        self.codes.bits()
    }

    /// Number of parent groups.
    pub fn n_parents(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total distinct (parent, child) pairs stored in metadata.
    pub fn metadata_entries(&self) -> usize {
        self.values.len()
    }

    /// Size of the group of parent `p`.
    pub fn group_len(&self, p: u32) -> usize {
        let p = p as usize;
        (self.offsets[p + 1] - self.offsets[p]) as usize
    }

    /// Alg. 1: reconstructs row `i` given the parent's dict code at `i`.
    #[inline]
    pub fn get(&self, i: usize, parent_code: u32) -> i64 {
        let off = self.offsets[parent_code as usize];
        self.values[(off + self.codes.get(i) as u32) as usize]
    }

    /// [`get`](Self::get) skipping the bounds assertion (validated hot paths).
    #[inline]
    pub fn get_unchecked_len(&self, i: usize, parent_code: u32) -> i64 {
        let off = self.offsets[parent_code as usize];
        self.values[(off + self.codes.get_unchecked_len(i) as u32) as usize]
    }

    /// Bulk decode given per-row parent codes.
    pub fn decode_into(&self, parent_codes: &[u32], out: &mut Vec<i64>) -> Result<()> {
        if parent_codes.len() != self.len() {
            return Err(Error::LengthMismatch {
                left: parent_codes.len(),
                right: self.len(),
            });
        }
        out.clear();
        out.reserve(self.len());
        // Batched group-index unpack; Alg. 1's metadata lookup runs over
        // cache-hot chunks.
        self.codes.unpack_chunks(|start, chunk| {
            for (&p, &c) in parent_codes[start..start + chunk.len()].iter().zip(chunk) {
                let off = self.offsets[p as usize];
                out.push(self.values[(off + c as u32) as usize]);
            }
        });
        Ok(())
    }

    /// Materializes selected rows through a parent-code accessor (the
    /// hierarchical query path of Fig. 5: fetch city code, then zip lookup).
    pub fn gather_into(
        &self,
        sel: &SelectionVector,
        parent_code_at: impl Fn(usize) -> u32,
        out: &mut Vec<i64>,
    ) {
        out.clear();
        out.reserve(sel.len());
        for &p in sel.positions() {
            out.push(self.get(p as usize, parent_code_at(p as usize)));
        }
    }

    /// Predicate pushdown: evaluates `range` once per distinct
    /// (parent, child) metadata entry — the flattened `values` array of
    /// Fig. 3 — and then tests each row by indexing the precomputed verdicts
    /// with `offsets[parent] + code`, the same address Alg. 1 reads. No
    /// child value is reconstructed per row.
    pub fn filter_with_parents(
        &self,
        range: &IntRange,
        parent_code_at: impl Fn(usize) -> u32,
        out: &mut Vec<u32>,
    ) {
        out.clear();
        let verdicts: Vec<bool> = self.values.iter().map(|&v| range.matches(v)).collect();
        self.codes.unpack_chunks(|start, chunk| {
            for (j, &c) in chunk.iter().enumerate() {
                let i = start + j;
                let off = self.offsets[parent_code_at(i) as usize];
                if verdicts[(off + c as u32) as usize] {
                    out.push(i as u32);
                }
            }
        });
    }

    /// Exact value bounds from the metadata array: every stored child value
    /// occurs in at least one row (entries are created on first occurrence).
    pub fn value_bounds(&self) -> Option<ZoneMap> {
        ZoneMap::from_values(&self.values)
    }

    /// Aggregate pushdown: histograms the per-row metadata addresses
    /// (`offsets[parent] + code`, the same address Alg. 1 reads), then
    /// folds once per distinct (parent, child) entry weighted by its count
    /// — no child value is reconstructed per row.
    pub fn aggregate_with_parents(
        &self,
        parent_code_at: impl Fn(usize) -> u32,
        state: &mut IntAggState,
    ) {
        let mut counts = vec![0u64; self.values.len()];
        self.codes.unpack_chunks(|start, chunk| {
            for (j, &c) in chunk.iter().enumerate() {
                let off = self.offsets[parent_code_at(start + j) as usize];
                counts[(off + c as u32) as usize] += 1;
            }
        });
        for (&v, &n) in self.values.iter().zip(&counts) {
            state.update_n(v, n);
        }
    }

    /// [`aggregate_with_parents`](Self::aggregate_with_parents) over the
    /// selected positions only (the caller validates `sel`).
    pub fn aggregate_selected_with_parents(
        &self,
        sel: &SelectionVector,
        parent_code_at: impl Fn(usize) -> u32,
        state: &mut IntAggState,
    ) {
        debug_assert!(sel.validate(self.len()));
        let mut counts = vec![0u64; self.values.len()];
        for &p in sel.positions() {
            let i = p as usize;
            let off = self.offsets[parent_code_at(i) as usize];
            counts[(off + self.codes.get_unchecked_len(i) as u32) as usize] += 1;
        }
        for (&v, &n) in self.values.iter().zip(&counts) {
            state.update_n(v, n);
        }
    }

    /// Grouped aggregate pushdown: folds row `i` into
    /// `states[group_of[i]]` through the Alg. 1 metadata address.
    pub fn aggregate_grouped_with_parents(
        &self,
        group_of: &[u32],
        parent_code_at: impl Fn(usize) -> u32,
        states: &mut [IntAggState],
    ) {
        assert_eq!(group_of.len(), self.len(), "group codes misaligned");
        self.codes.unpack_chunks(|start, chunk| {
            for (j, &c) in chunk.iter().enumerate() {
                let i = start + j;
                let off = self.offsets[parent_code_at(i) as usize];
                states[group_of[i] as usize].update(self.values[(off + c as u32) as usize]);
            }
        });
    }

    /// Compressed size: packed codes + metadata arrays (the paper includes
    /// metadata in the reported compression size).
    pub fn compressed_bytes(&self) -> usize {
        1 + self.codes.tight_bytes() + self.values.len() * 8 + self.offsets.len() * 4
    }

    /// Serialized length of [`write_to`](Self::write_to).
    pub fn serialized_len(&self) -> usize {
        self.codes.serialized_len() + 8 + self.values.len() * 8 + 8 + self.offsets.len() * 4
    }

    /// Writes `codes | n_values | values | n_offsets | offsets`.
    pub fn write_to(&self, buf: &mut impl BufMut) {
        self.codes.write_to(buf);
        buf.put_u64_le(self.values.len() as u64);
        for &v in &self.values {
            buf.put_i64_le(v);
        }
        buf.put_u64_le(self.offsets.len() as u64);
        for &o in &self.offsets {
            buf.put_u32_le(o);
        }
    }

    /// Reads back a [`write_to`](Self::write_to) payload.
    pub fn read_from(buf: &mut impl Buf) -> Result<Self> {
        let codes = BitPackedVec::read_from(buf)?;
        if buf.remaining() < 8 {
            return Err(Error::corrupt("hier values header truncated"));
        }
        let n_values = buf.get_u64_le() as usize;
        if buf.remaining() < n_values.saturating_mul(8) {
            return Err(Error::corrupt("hier values truncated"));
        }
        let mut values = Vec::with_capacity(n_values);
        for _ in 0..n_values {
            values.push(buf.get_i64_le());
        }
        if buf.remaining() < 8 {
            return Err(Error::corrupt("hier offsets header truncated"));
        }
        let n_offsets = buf.get_u64_le() as usize;
        if n_offsets == 0 {
            return Err(Error::corrupt("hier offsets empty"));
        }
        if buf.remaining() < n_offsets.saturating_mul(4) {
            return Err(Error::corrupt("hier offsets truncated"));
        }
        let mut offsets = Vec::with_capacity(n_offsets);
        for _ in 0..n_offsets {
            offsets.push(buf.get_u32_le());
        }
        if offsets[0] != 0
            || *offsets.last().unwrap() as usize != values.len()
            || offsets.windows(2).any(|w| w[0] > w[1])
        {
            return Err(Error::corrupt("hier offsets inconsistent"));
        }
        Ok(Self {
            codes,
            values,
            offsets,
        })
    }
}

/// Hierarchically encoded column with *string* child values
/// (e.g. city w.r.t. state). The metadata pool stores each distinct
/// (parent, child) pair's string once, grouped by parent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierStr {
    codes: BitPackedVec,
    /// Distinct child strings grouped by parent code.
    values: StringPool,
    /// Group starts; `offsets.len() == n_parents + 1`.
    offsets: Vec<u32>,
}

impl HierStr {
    /// Encodes string `child` rows w.r.t. parent dictionary codes.
    pub fn encode(child: &StringPool, parent_codes: &[u32], n_parents: usize) -> Result<Self> {
        if child.len() != parent_codes.len() {
            return Err(Error::LengthMismatch {
                left: child.len(),
                right: parent_codes.len(),
            });
        }
        let mut groups: Vec<StringDictBuilder> = Vec::new();
        groups.resize_with(n_parents, StringDictBuilder::new);
        let mut codes = Vec::with_capacity(child.len());
        for (i, &p) in parent_codes.iter().enumerate() {
            let p_us = p as usize;
            if p_us >= n_parents {
                return Err(Error::IndexOutOfBounds {
                    index: p_us,
                    len: n_parents,
                });
            }
            codes.push(groups[p_us].intern(child.get(i)) as u64);
        }
        let mut values = StringPool::new();
        let mut offsets = Vec::with_capacity(n_parents + 1);
        offsets.push(0u32);
        for g in groups {
            let pool = g.finish();
            for s in pool.iter() {
                values.push(s);
            }
            offsets.push(values.len() as u32);
        }
        Ok(Self {
            codes: BitPackedVec::pack_minimal(&codes),
            values,
            offsets,
        })
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Whether the column is empty.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Per-row code bit width.
    pub fn bits(&self) -> u8 {
        self.codes.bits()
    }

    /// Number of parent groups.
    pub fn n_parents(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Alg. 1 for strings.
    #[inline]
    pub fn get(&self, i: usize, parent_code: u32) -> &str {
        let off = self.offsets[parent_code as usize];
        self.values.get((off + self.codes.get(i) as u32) as usize)
    }

    /// [`get`](Self::get) skipping the bounds assertion (validated hot paths).
    #[inline]
    pub fn get_unchecked_len(&self, i: usize, parent_code: u32) -> &str {
        let off = self.offsets[parent_code as usize];
        self.values
            .get((off + self.codes.get_unchecked_len(i) as u32) as usize)
    }

    /// Bulk decode into a per-row pool.
    pub fn decode_into_pool(&self, parent_codes: &[u32]) -> Result<StringPool> {
        if parent_codes.len() != self.len() {
            return Err(Error::LengthMismatch {
                left: parent_codes.len(),
                right: self.len(),
            });
        }
        let mut pool = StringPool::with_capacity(self.len(), self.len() * 8);
        self.codes.unpack_chunks(|start, chunk| {
            for (&p, &c) in parent_codes[start..start + chunk.len()].iter().zip(chunk) {
                let off = self.offsets[p as usize];
                pool.push(self.values.get((off + c as u32) as usize));
            }
        });
        Ok(pool)
    }

    /// Materializes selected rows as owned strings.
    pub fn gather_into(
        &self,
        sel: &SelectionVector,
        parent_code_at: impl Fn(usize) -> u32,
        out: &mut Vec<String>,
    ) {
        out.clear();
        out.reserve(sel.len());
        for &p in sel.positions() {
            out.push(self.get(p as usize, parent_code_at(p as usize)).to_owned());
        }
    }

    /// Predicate pushdown for string equality: evaluates the comparison once
    /// per distinct (parent, child) pool entry, then tests rows against the
    /// precomputed verdicts — the string analogue of
    /// [`HierInt::filter_with_parents`].
    pub fn filter_eq_with_parents(
        &self,
        value: &str,
        negate: bool,
        parent_code_at: impl Fn(usize) -> u32,
        out: &mut Vec<u32>,
    ) {
        out.clear();
        let verdicts: Vec<bool> = (0..self.values.len())
            .map(|k| (self.values.get(k) == value) != negate)
            .collect();
        self.codes.unpack_chunks(|start, chunk| {
            for (j, &c) in chunk.iter().enumerate() {
                let i = start + j;
                let off = self.offsets[parent_code_at(i) as usize];
                if verdicts[(off + c as u32) as usize] {
                    out.push(i as u32);
                }
            }
        });
    }

    /// Aggregate pushdown (`COUNT`, lexicographic `MIN`/`MAX`): histograms
    /// the metadata addresses, then compares each distinct (parent, child)
    /// string against the bounds once, weighted by its count.
    pub fn aggregate_with_parents(
        &self,
        parent_code_at: impl Fn(usize) -> u32,
        state: &mut StrAggState,
    ) {
        let mut counts = vec![0u64; self.values.len()];
        self.codes.unpack_chunks(|start, chunk| {
            for (j, &c) in chunk.iter().enumerate() {
                let off = self.offsets[parent_code_at(start + j) as usize];
                counts[(off + c as u32) as usize] += 1;
            }
        });
        for (k, &n) in counts.iter().enumerate() {
            if n > 0 {
                state.update_n(self.values.get(k), n);
            }
        }
    }

    /// [`aggregate_with_parents`](Self::aggregate_with_parents) over the
    /// selected positions only (the caller validates `sel`).
    pub fn aggregate_selected_with_parents(
        &self,
        sel: &SelectionVector,
        parent_code_at: impl Fn(usize) -> u32,
        state: &mut StrAggState,
    ) {
        debug_assert!(sel.validate(self.len()));
        let mut counts = vec![0u64; self.values.len()];
        for &p in sel.positions() {
            let i = p as usize;
            let off = self.offsets[parent_code_at(i) as usize];
            counts[(off + self.codes.get_unchecked_len(i) as u32) as usize] += 1;
        }
        for (k, &n) in counts.iter().enumerate() {
            if n > 0 {
                state.update_n(self.values.get(k), n);
            }
        }
    }

    /// Grouped aggregate pushdown: folds row `i` into
    /// `states[group_of[i]]` through the metadata address.
    pub fn aggregate_grouped_with_parents(
        &self,
        group_of: &[u32],
        parent_code_at: impl Fn(usize) -> u32,
        states: &mut [StrAggState],
    ) {
        assert_eq!(group_of.len(), self.len(), "group codes misaligned");
        self.codes.unpack_chunks(|start, chunk| {
            for (j, &c) in chunk.iter().enumerate() {
                let i = start + j;
                let off = self.offsets[parent_code_at(i) as usize];
                states[group_of[i] as usize].update(self.values.get((off + c as u32) as usize));
            }
        });
    }

    /// Compressed size: packed codes + flattened string metadata + offsets.
    pub fn compressed_bytes(&self) -> usize {
        1 + self.codes.tight_bytes() + self.values.heap_bytes() + self.offsets.len() * 4
    }

    /// Serialized length of [`write_to`](Self::write_to).
    pub fn serialized_len(&self) -> usize {
        self.codes.serialized_len() + self.values.serialized_len() + 8 + self.offsets.len() * 4
    }

    /// Writes `codes | values | n_offsets | offsets`.
    pub fn write_to(&self, buf: &mut impl BufMut) {
        self.codes.write_to(buf);
        self.values.write_to(buf);
        buf.put_u64_le(self.offsets.len() as u64);
        for &o in &self.offsets {
            buf.put_u32_le(o);
        }
    }

    /// Reads back a [`write_to`](Self::write_to) payload.
    pub fn read_from(buf: &mut impl Buf) -> Result<Self> {
        let codes = BitPackedVec::read_from(buf)?;
        let values = StringPool::read_from(buf)?;
        if buf.remaining() < 8 {
            return Err(Error::corrupt("hier-str offsets header truncated"));
        }
        let n_offsets = buf.get_u64_le() as usize;
        if n_offsets == 0 {
            return Err(Error::corrupt("hier-str offsets empty"));
        }
        if buf.remaining() < n_offsets.saturating_mul(4) {
            return Err(Error::corrupt("hier-str offsets truncated"));
        }
        let mut offsets = Vec::with_capacity(n_offsets);
        for _ in 0..n_offsets {
            offsets.push(buf.get_u32_le());
        }
        if offsets[0] != 0
            || *offsets.last().unwrap() as usize != values.len()
            || offsets.windows(2).any(|w| w[0] > w[1])
        {
            return Err(Error::corrupt("hier-str offsets inconsistent"));
        }
        Ok(Self {
            codes,
            values,
            offsets,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Fig. 3 worked example.
    fn fig3() -> (Vec<i64>, Vec<u32>) {
        // city: Cortland=0, Naples=1, NYC=2
        let cities = vec![0u32, 1, 1, 1, 2, 2];
        let zips = vec![13_045i64, 34_102, 34_112, 34_102, 10_016, 10_001];
        (zips, cities)
    }

    #[test]
    fn fig3_metadata_layout() {
        let (zips, cities) = fig3();
        let enc = HierInt::encode(&zips, &cities, 3).unwrap();
        // zip_codes: [13045, 34102, 34112, 10016, 10001]; offsets: [0,1,3,5]
        assert_eq!(enc.metadata_entries(), 5);
        assert_eq!(enc.group_len(0), 1);
        assert_eq!(enc.group_len(1), 2);
        assert_eq!(enc.group_len(2), 2);
        // Per-row codes from Fig. 3(b): [0, 0, 1, 0, 0, 1]
        let mut out = Vec::new();
        enc.decode_into(&cities, &mut out).unwrap();
        assert_eq!(out, zips);
        // Alg. 1 point accesses.
        assert_eq!(enc.get(2, 1), 34_112);
        assert_eq!(enc.get(5, 2), 10_001);
        // Max group size 2 -> 1 bit per row.
        assert_eq!(enc.bits(), 1);
    }

    #[test]
    fn bitwidth_drops_vs_global_dict() {
        // 1000 parents, 16 children each, all children globally distinct:
        // global dict needs 14 bits; per-parent index needs 4.
        let mut child = Vec::new();
        let mut parent = Vec::new();
        for row in 0..64_000usize {
            let p = (row % 1_000) as u32;
            let c = (p as i64) * 100 + (row / 1_000 % 16) as i64;
            parent.push(p);
            child.push(c);
        }
        let enc = HierInt::encode(&child, &parent, 1_000).unwrap();
        assert_eq!(enc.bits(), 4);
        assert_eq!(enc.metadata_entries(), 16_000);
        let mut out = Vec::new();
        enc.decode_into(&parent, &mut out).unwrap();
        assert_eq!(out, child);
    }

    #[test]
    fn rejects_parent_code_out_of_range() {
        assert!(HierInt::encode(&[1], &[5], 3).is_err());
        assert!(HierInt::encode(&[1, 2], &[0], 1).is_err());
    }

    #[test]
    fn empty_hierarchy() {
        let enc = HierInt::encode(&[], &[], 0).unwrap();
        assert!(enc.is_empty());
        assert_eq!(enc.n_parents(), 0);
        assert_eq!(enc.metadata_entries(), 0);
    }

    #[test]
    fn single_parent_all_children() {
        let child: Vec<i64> = (0..100).map(|i| i * 3).collect();
        let parent = vec![0u32; 100];
        let enc = HierInt::encode(&child, &parent, 1).unwrap();
        assert_eq!(enc.group_len(0), 100);
        assert_eq!(enc.bits(), 7);
        let mut out = Vec::new();
        enc.decode_into(&parent, &mut out).unwrap();
        assert_eq!(out, child);
    }

    #[test]
    fn gather_through_accessor() {
        let (zips, cities) = fig3();
        let enc = HierInt::encode(&zips, &cities, 3).unwrap();
        let sel = SelectionVector::new(vec![0, 3, 5]);
        let mut out = Vec::new();
        enc.gather_into(&sel, |i| cities[i], &mut out);
        assert_eq!(out, vec![13_045, 34_102, 10_001]);
    }

    #[test]
    fn int_serialization_roundtrip() {
        let (zips, cities) = fig3();
        let enc = HierInt::encode(&zips, &cities, 3).unwrap();
        let mut buf = Vec::new();
        enc.write_to(&mut buf);
        assert_eq!(buf.len(), enc.serialized_len());
        let back = HierInt::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(back, enc);
        assert!(HierInt::read_from(&mut &buf[..5]).is_err());
    }

    #[test]
    fn str_roundtrip_state_city() {
        // state -> city (the paper's DMV (state, city) pair).
        let states = vec![0u32, 0, 1, 1, 0, 1];
        let cities = StringPool::from_iter(["NYC", "Albany", "Miami", "Naples", "NYC", "Miami"]);
        let enc = HierStr::encode(&cities, &states, 2).unwrap();
        assert_eq!(enc.n_parents(), 2);
        assert_eq!(enc.bits(), 1);
        assert_eq!(enc.get(0, 0), "NYC");
        assert_eq!(enc.get(3, 1), "Naples");
        let pool = enc.decode_into_pool(&states).unwrap();
        for i in 0..cities.len() {
            assert_eq!(pool.get(i), cities.get(i));
        }
    }

    #[test]
    fn str_gather_and_serialization() {
        let states = vec![0u32, 1, 0];
        let cities = StringPool::from_iter(["A", "B", "C"]);
        let enc = HierStr::encode(&cities, &states, 2).unwrap();
        let sel = SelectionVector::new(vec![1, 2]);
        let mut out = Vec::new();
        enc.gather_into(&sel, |i| states[i], &mut out);
        assert_eq!(out, vec!["B".to_owned(), "C".to_owned()]);
        let mut buf = Vec::new();
        enc.write_to(&mut buf);
        assert_eq!(buf.len(), enc.serialized_len());
        let back = HierStr::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(back, enc);
    }

    #[test]
    fn str_rejects_misaligned() {
        let cities = StringPool::from_iter(["A"]);
        assert!(HierStr::encode(&cities, &[0, 1], 2).is_err());
        assert!(HierStr::encode(&cities, &[9], 2).is_err());
    }

    #[test]
    fn metadata_counted_in_size() {
        let (zips, cities) = fig3();
        let enc = HierInt::encode(&zips, &cities, 3).unwrap();
        // 6 rows * 1 bit -> 1 byte, +1 width byte, +5 values * 8, +4 offsets * 4.
        assert_eq!(enc.compressed_bytes(), 1 + 1 + 40 + 16);
    }
}
