//! Directory-level storage seam: real directories, a crash-simulating
//! in-memory filesystem, and a fault-injecting decorator.
//!
//! The ingest subsystem ([`ingest`](crate::ingest),
//! [`manifest`](crate::manifest), [`compact`](mod@crate::compact)) never
//! touches `std::fs` directly — every file and namespace operation goes
//! through the [`Vfs`] trait, which models exactly the POSIX durability
//! contract the crash-consistency proofs rest on:
//!
//! * **file content** becomes durable only when that file's
//!   [`fsync`](crate::io::IoBackend::fsync) succeeds;
//! * **namespace entries** (create / remove / rename) become durable only
//!   when [`sync_dir`](Vfs::sync_dir) succeeds — a file can be fully
//!   fsynced and still vanish in a crash because its directory entry was
//!   never synced;
//! * `rename` is atomic: after a crash the destination name holds either
//!   the old mapping or the new one, never a blend.
//!
//! Implementations:
//!
//! * [`DirVfs`] — a real directory (`std::fs` + directory fsync);
//! * [`SimVfs`] — an in-memory filesystem that tracks durable vs volatile
//!   state per file plus the pending (unsynced) namespace-op list, can
//!   halt at a chosen operation index ([`SimVfs::crash_after`]), and can
//!   then [`SimVfs::apply_crash`] — replacing all state with what a
//!   power failure at that instant could leave behind: durable content
//!   plus a *seeded prefix* of each unsynced tail and a seeded prefix of
//!   the pending namespace ops. Deterministic per seed, so every crash
//!   point is replayable;
//! * [`FaultyVfs`] — wraps every handle it hands out in a
//!   [`FaultyBackend`] sharing one [`FaultInjector`], so a whole
//!   directory draws short writes / write errors / failed fsyncs from a
//!   single seeded schedule with pooled [`FaultStats`](crate::io::FaultStats).

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use corra_columnar::error::{Error, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::io::{read_full_at, write_full_at, FaultInjector, FaultPlan, FaultyBackend, IoBackend};

/// A flat directory of named files with explicit durability. See the
/// [module docs](self) for the contract.
pub trait Vfs: Send + Sync {
    /// Creates (or truncates) `name` and returns a read-write handle. The
    /// directory *entry* stays volatile until [`sync_dir`](Self::sync_dir).
    ///
    /// # Errors
    ///
    /// Invalid names; underlying I/O failures.
    fn create(&self, name: &str) -> Result<Box<dyn IoBackend>>;

    /// Opens an existing file for reading.
    ///
    /// # Errors
    ///
    /// Missing files; underlying I/O failures.
    fn open(&self, name: &str) -> Result<Box<dyn IoBackend>>;

    /// Deletes `name`. Durable only after [`sync_dir`](Self::sync_dir).
    ///
    /// # Errors
    ///
    /// Missing files; underlying I/O failures.
    fn remove(&self, name: &str) -> Result<()>;

    /// Atomically renames `from` to `to` (replacing `to` if present).
    /// Durable only after [`sync_dir`](Self::sync_dir).
    ///
    /// # Errors
    ///
    /// Missing source; underlying I/O failures.
    fn rename(&self, from: &str, to: &str) -> Result<()>;

    /// Lists file names, sorted.
    ///
    /// # Errors
    ///
    /// Underlying I/O failures.
    fn list(&self) -> Result<Vec<String>>;

    /// Fsyncs the directory itself, making all namespace operations so
    /// far durable.
    ///
    /// # Errors
    ///
    /// Underlying I/O failures.
    fn sync_dir(&self) -> Result<()>;
}

/// Shared filesystems delegate, so `Arc<dyn Vfs>` is itself a [`Vfs`].
impl<V: Vfs + ?Sized> Vfs for Arc<V> {
    fn create(&self, name: &str) -> Result<Box<dyn IoBackend>> {
        (**self).create(name)
    }

    fn open(&self, name: &str) -> Result<Box<dyn IoBackend>> {
        (**self).open(name)
    }

    fn remove(&self, name: &str) -> Result<()> {
        (**self).remove(name)
    }

    fn rename(&self, from: &str, to: &str) -> Result<()> {
        (**self).rename(from, to)
    }

    fn list(&self) -> Result<Vec<String>> {
        (**self).list()
    }

    fn sync_dir(&self) -> Result<()> {
        (**self).sync_dir()
    }
}

/// Reads the whole of `name` into a buffer.
///
/// # Errors
///
/// Missing files; underlying I/O failures.
pub fn read_file(vfs: &dyn Vfs, name: &str) -> Result<Vec<u8>> {
    let file = vfs.open(name)?;
    let len = usize::try_from(file.len()?)
        .map_err(|_| Error::invalid(format!("file {name} too large for memory")))?;
    let mut bytes = vec![0u8; len];
    read_full_at(&file, 0, &mut bytes)?;
    Ok(bytes)
}

/// Atomically publishes `bytes` as `final_name`: write to `tmp_name`,
/// fsync, rename, fsync the directory. After `Ok`, a crash at any later
/// instant still observes the complete file under `final_name`; a crash
/// *during* the call observes either no `final_name` or the complete
/// file, never a torn one.
///
/// # Errors
///
/// Underlying I/O failures at any stage (the caller must treat the
/// publish as not having happened).
pub fn write_file_atomic(
    vfs: &dyn Vfs,
    tmp_name: &str,
    final_name: &str,
    bytes: &[u8],
) -> Result<()> {
    let file = vfs.create(tmp_name)?;
    write_full_at(&file, 0, bytes)?;
    file.fsync()?;
    drop(file);
    vfs.rename(tmp_name, final_name)?;
    vfs.sync_dir()
}

fn check_name(name: &str) -> Result<()> {
    if name.is_empty() || name.contains('/') || name.contains('\\') || name == "." || name == ".." {
        return Err(Error::invalid(format!("invalid vfs file name: {name:?}")));
    }
    Ok(())
}

/// A [`Vfs`] over a real directory.
#[derive(Debug, Clone)]
pub struct DirVfs {
    root: PathBuf,
}

impl DirVfs {
    /// Opens `root` as a table directory, creating it if missing.
    ///
    /// # Errors
    ///
    /// Filesystem errors.
    pub fn create(root: PathBuf) -> Result<Self> {
        std::fs::create_dir_all(&root)
            .map_err(|e| Error::invalid(format!("creating table dir {}: {e}", root.display())))?;
        Ok(Self { root })
    }

    /// Wraps an existing directory without touching it.
    #[must_use]
    pub fn new(root: PathBuf) -> Self {
        Self { root }
    }

    /// The directory path.
    #[must_use]
    pub fn root(&self) -> &std::path::Path {
        &self.root
    }
}

impl Vfs for DirVfs {
    fn create(&self, name: &str) -> Result<Box<dyn IoBackend>> {
        check_name(name)?;
        Ok(Box::new(crate::io::FileBackend::create(
            &self.root.join(name),
        )?))
    }

    fn open(&self, name: &str) -> Result<Box<dyn IoBackend>> {
        check_name(name)?;
        Ok(Box::new(crate::io::FileBackend::open(
            &self.root.join(name),
        )?))
    }

    fn remove(&self, name: &str) -> Result<()> {
        check_name(name)?;
        std::fs::remove_file(self.root.join(name))
            .map_err(|e| Error::invalid(format!("removing {name}: {e}")))
    }

    fn rename(&self, from: &str, to: &str) -> Result<()> {
        check_name(from)?;
        check_name(to)?;
        std::fs::rename(self.root.join(from), self.root.join(to))
            .map_err(|e| Error::invalid(format!("renaming {from} -> {to}: {e}")))
    }

    fn list(&self) -> Result<Vec<String>> {
        let entries = std::fs::read_dir(&self.root)
            .map_err(|e| Error::invalid(format!("listing table dir: {e}")))?;
        let mut names = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| Error::invalid(format!("listing table dir: {e}")))?;
            if entry
                .file_type()
                .map_err(|e| Error::invalid(format!("listing table dir: {e}")))?
                .is_file()
            {
                if let Some(name) = entry.file_name().to_str() {
                    names.push(name.to_owned());
                }
            }
        }
        names.sort();
        Ok(names)
    }

    fn sync_dir(&self) -> Result<()> {
        // On unix a directory can be opened and fsynced like a file; that
        // is what makes renames durable. Elsewhere this is a no-op.
        #[cfg(unix)]
        {
            let dir = std::fs::File::open(&self.root)
                .map_err(|e| Error::invalid(format!("opening table dir for sync: {e}")))?;
            dir.sync_all()
                .map_err(|e| Error::invalid(format!("fsyncing table dir: {e}")))?;
        }
        Ok(())
    }
}

type FileId = u64;

#[derive(Debug, Clone, Default)]
struct SimFile {
    /// Content as of the last successful fsync.
    durable: Vec<u8>,
    /// Live content (what reads observe before a crash).
    current: Vec<u8>,
}

#[derive(Debug, Clone)]
enum NsOp {
    Create(String, FileId),
    Remove(String),
    Rename(String, String),
}

#[derive(Debug)]
struct SimState {
    seed: u64,
    files: HashMap<FileId, SimFile>,
    live_ns: HashMap<String, FileId>,
    durable_ns: HashMap<String, FileId>,
    pending: Vec<NsOp>,
    next_id: FileId,
    ops: u64,
    crash_at: Option<u64>,
    crashed: bool,
}

impl SimState {
    /// Counts one mutating operation, tripping the crash point if armed.
    fn tick(&mut self) -> Result<()> {
        if self.crashed {
            return Err(Error::invalid("simulated crash: filesystem halted"));
        }
        if let Some(at) = self.crash_at {
            if self.ops >= at {
                self.crashed = true;
                return Err(Error::invalid("simulated crash: filesystem halted"));
            }
        }
        self.ops += 1;
        Ok(())
    }

    fn check_alive(&self) -> Result<()> {
        if self.crashed {
            return Err(Error::invalid("simulated crash: filesystem halted"));
        }
        Ok(())
    }
}

/// An in-memory crash-simulating [`Vfs`]. See the [module docs](self).
///
/// Cloning shares the same filesystem (both clones see the same files and
/// the same crash state).
#[derive(Clone)]
pub struct SimVfs {
    state: Arc<Mutex<SimState>>,
}

impl SimVfs {
    /// An empty simulated filesystem whose crash outcomes are seeded by
    /// `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            state: Arc::new(Mutex::new(SimState {
                seed,
                files: HashMap::new(),
                live_ns: HashMap::new(),
                durable_ns: HashMap::new(),
                pending: Vec::new(),
                next_id: 1,
                ops: 0,
                crash_at: None,
                crashed: false,
            })),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SimState> {
        self.state.lock().expect("sim vfs lock poisoned")
    }

    /// Mutating operations applied so far (writes, fsyncs, namespace ops,
    /// directory syncs). Run a workload once uncrashed to learn its op
    /// count, then sweep [`crash_after`](Self::crash_after) over `0..n`.
    #[must_use]
    pub fn op_count(&self) -> u64 {
        self.lock().ops
    }

    /// Arms the crash point: the `n+1`-th mutating operation from the
    /// start of the run fails and halts the filesystem (every later call
    /// errors) until [`apply_crash`](Self::apply_crash).
    pub fn crash_after(&self, ops: u64) {
        self.lock().crash_at = Some(ops);
    }

    /// Whether the armed crash point has tripped.
    #[must_use]
    pub fn has_crashed(&self) -> bool {
        self.lock().crashed
    }

    /// Simulates the power failure and reboots the filesystem: state
    /// becomes *durable content plus a seeded prefix of each file's
    /// unsynced tail*, under *the durable namespace plus a seeded prefix
    /// of the pending namespace ops*. Callable at any instant (armed
    /// crash or not), deterministic per `(seed, op count)`.
    pub fn apply_crash(&self) {
        let mut st = self.lock();
        let mut rng = StdRng::seed_from_u64(st.seed ^ st.ops.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        // A seeded prefix of the unsynced namespace ops survives: metadata
        // journaling preserves order, but the tail past the crash instant
        // is lost.
        let survive = rng.gen_range(0..=st.pending.len());
        let mut ns = st.durable_ns.clone();
        for op in &st.pending[..survive] {
            match op {
                NsOp::Create(name, id) => {
                    ns.insert(name.clone(), *id);
                }
                NsOp::Remove(name) => {
                    ns.remove(name);
                }
                NsOp::Rename(from, to) => {
                    if let Some(id) = ns.remove(from) {
                        ns.insert(to.clone(), id);
                    }
                }
            }
        }
        // Per file (in id order, for determinism): durable bytes survive,
        // plus a seeded prefix of whatever was written past the last
        // fsync — the torn tail.
        let mut ids: Vec<FileId> = st.files.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            let file = st.files.get_mut(&id).expect("file id listed");
            if file.current.len() > file.durable.len() {
                let tail = file.current.len() - file.durable.len();
                let kept = rng.gen_range(0..=tail);
                let mut content = file.durable.clone();
                content.extend_from_slice(
                    &file.current[file.durable.len()..file.durable.len() + kept],
                );
                file.durable = content.clone();
                file.current = content;
            } else {
                file.current = file.durable.clone();
            }
        }
        st.live_ns = ns.clone();
        st.durable_ns = ns;
        st.pending.clear();
        st.crashed = false;
        st.crash_at = None;
        st.ops = 0;
    }

    /// The durable content of `name` (what a crash right now would
    /// preserve *if its directory entry is durable*), for test oracles.
    #[must_use]
    pub fn durable_content(&self, name: &str) -> Option<Vec<u8>> {
        let st = self.lock();
        let id = st.durable_ns.get(name)?;
        st.files.get(id).map(|f| f.durable.clone())
    }
}

struct SimHandle {
    state: Arc<Mutex<SimState>>,
    id: FileId,
}

impl SimHandle {
    fn lock(&self) -> std::sync::MutexGuard<'_, SimState> {
        self.state.lock().expect("sim vfs lock poisoned")
    }
}

impl IoBackend for SimHandle {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<usize> {
        let st = self.lock();
        st.check_alive()?;
        let file = st
            .files
            .get(&self.id)
            .ok_or_else(|| Error::invalid("sim file vanished"))?;
        let Ok(start) = usize::try_from(offset) else {
            return Ok(0);
        };
        if start >= file.current.len() {
            return Ok(0);
        }
        let n = buf.len().min(file.current.len() - start);
        buf[..n].copy_from_slice(&file.current[start..start + n]);
        Ok(n)
    }

    fn len(&self) -> Result<u64> {
        let st = self.lock();
        st.check_alive()?;
        let file = st
            .files
            .get(&self.id)
            .ok_or_else(|| Error::invalid("sim file vanished"))?;
        Ok(file.current.len() as u64)
    }

    fn write_at(&self, offset: u64, buf: &[u8]) -> Result<usize> {
        let mut st = self.lock();
        st.tick()?;
        let file = st
            .files
            .get_mut(&self.id)
            .ok_or_else(|| Error::invalid("sim file vanished"))?;
        let start =
            usize::try_from(offset).map_err(|_| Error::invalid("sim write offset out of range"))?;
        if file.current.len() < start + buf.len() {
            file.current.resize(start + buf.len(), 0);
        }
        file.current[start..start + buf.len()].copy_from_slice(buf);
        Ok(buf.len())
    }

    fn fsync(&self) -> Result<()> {
        let mut st = self.lock();
        st.tick()?;
        let file = st
            .files
            .get_mut(&self.id)
            .ok_or_else(|| Error::invalid("sim file vanished"))?;
        file.durable = file.current.clone();
        Ok(())
    }
}

impl Vfs for SimVfs {
    fn create(&self, name: &str) -> Result<Box<dyn IoBackend>> {
        check_name(name)?;
        let mut st = self.lock();
        st.tick()?;
        let id = st.next_id;
        st.next_id += 1;
        st.files.insert(id, SimFile::default());
        st.live_ns.insert(name.to_owned(), id);
        st.pending.push(NsOp::Create(name.to_owned(), id));
        Ok(Box::new(SimHandle {
            state: Arc::clone(&self.state),
            id,
        }))
    }

    fn open(&self, name: &str) -> Result<Box<dyn IoBackend>> {
        check_name(name)?;
        let st = self.lock();
        st.check_alive()?;
        let id = *st
            .live_ns
            .get(name)
            .ok_or_else(|| Error::invalid(format!("opening table file: {name} not found")))?;
        Ok(Box::new(SimHandle {
            state: Arc::clone(&self.state),
            id,
        }))
    }

    fn remove(&self, name: &str) -> Result<()> {
        check_name(name)?;
        let mut st = self.lock();
        st.tick()?;
        st.live_ns
            .remove(name)
            .ok_or_else(|| Error::invalid(format!("removing {name}: not found")))?;
        // File content is kept: the durable namespace (or an open handle)
        // may still reference it — exactly like an unlinked inode.
        st.pending.push(NsOp::Remove(name.to_owned()));
        Ok(())
    }

    fn rename(&self, from: &str, to: &str) -> Result<()> {
        check_name(from)?;
        check_name(to)?;
        let mut st = self.lock();
        st.tick()?;
        let id = st
            .live_ns
            .remove(from)
            .ok_or_else(|| Error::invalid(format!("renaming {from}: not found")))?;
        st.live_ns.insert(to.to_owned(), id);
        st.pending
            .push(NsOp::Rename(from.to_owned(), to.to_owned()));
        Ok(())
    }

    fn list(&self) -> Result<Vec<String>> {
        let st = self.lock();
        st.check_alive()?;
        let mut names: Vec<String> = st.live_ns.keys().cloned().collect();
        names.sort();
        Ok(names)
    }

    fn sync_dir(&self) -> Result<()> {
        let mut st = self.lock();
        st.tick()?;
        st.durable_ns = st.live_ns.clone();
        st.pending.clear();
        Ok(())
    }
}

/// A [`Vfs`] decorator that wraps every handle it hands out in a
/// [`FaultyBackend`] sharing one [`FaultInjector`], so the whole
/// directory draws from a single seeded fault schedule and reports pooled
/// counters.
pub struct FaultyVfs<V: Vfs> {
    inner: V,
    injector: Arc<FaultInjector>,
}

impl<V: Vfs> FaultyVfs<V> {
    /// Wraps `inner` with a fresh injector for `plan`.
    pub fn new(inner: V, plan: FaultPlan) -> Self {
        Self::with_injector(inner, Arc::new(FaultInjector::new(plan)))
    }

    /// Wraps `inner` drawing faults from a shared `injector`.
    pub fn with_injector(inner: V, injector: Arc<FaultInjector>) -> Self {
        Self { inner, injector }
    }

    /// The shared injector (for counters, or to share with more
    /// decorators).
    pub fn injector(&self) -> &Arc<FaultInjector> {
        &self.injector
    }
}

impl<V: Vfs> Vfs for FaultyVfs<V> {
    fn create(&self, name: &str) -> Result<Box<dyn IoBackend>> {
        let inner = self.inner.create(name)?;
        Ok(Box::new(FaultyBackend::with_injector(
            inner,
            Arc::clone(&self.injector),
        )))
    }

    fn open(&self, name: &str) -> Result<Box<dyn IoBackend>> {
        let inner = self.inner.open(name)?;
        Ok(Box::new(FaultyBackend::with_injector(
            inner,
            Arc::clone(&self.injector),
        )))
    }

    fn remove(&self, name: &str) -> Result<()> {
        self.inner.remove(name)
    }

    fn rename(&self, from: &str, to: &str) -> Result<()> {
        self.inner.rename(from, to)
    }

    fn list(&self) -> Result<Vec<String>> {
        self.inner.list()
    }

    fn sync_dir(&self) -> Result<()> {
        self.inner.sync_dir()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_all(vfs: &dyn Vfs, name: &str, bytes: &[u8]) -> Result<()> {
        let f = vfs.create(name)?;
        write_full_at(&f, 0, bytes)?;
        f.fsync()
    }

    #[test]
    fn sim_vfs_roundtrip_and_listing() {
        let vfs = SimVfs::new(1);
        write_all(&vfs, "b.seg", b"bravo").unwrap();
        write_all(&vfs, "a.seg", b"alpha").unwrap();
        vfs.sync_dir().unwrap();
        assert_eq!(vfs.list().unwrap(), vec!["a.seg", "b.seg"]);
        assert_eq!(read_file(&vfs, "a.seg").unwrap(), b"alpha");
        vfs.rename("a.seg", "c.seg").unwrap();
        assert_eq!(vfs.list().unwrap(), vec!["b.seg", "c.seg"]);
        assert_eq!(read_file(&vfs, "c.seg").unwrap(), b"alpha");
        vfs.remove("b.seg").unwrap();
        assert_eq!(vfs.list().unwrap(), vec!["c.seg"]);
        assert!(vfs.open("b.seg").is_err());
    }

    #[test]
    fn crash_preserves_only_a_prefix_of_unsynced_content() {
        for seed in 0..20 {
            let vfs = SimVfs::new(seed);
            let f = vfs.create("t.seg").unwrap();
            write_full_at(&f, 0, b"durable!").unwrap();
            f.fsync().unwrap();
            vfs.sync_dir().unwrap();
            write_full_at(&f, 8, b"volatile").unwrap();
            drop(f);
            vfs.apply_crash();
            let got = read_file(&vfs, "t.seg").unwrap();
            assert!(got.starts_with(b"durable!"), "fsynced bytes lost: {got:?}");
            assert!(got.len() <= 16);
            assert_eq!(
                &got[8..],
                &b"volatile"[..got.len() - 8],
                "torn tail must be a prefix"
            );
        }
    }

    #[test]
    fn crash_can_lose_a_file_whose_directory_entry_was_never_synced() {
        let mut lost = false;
        let mut kept = false;
        for seed in 0..40 {
            let vfs = SimVfs::new(seed);
            // Establish a baseline durable dir state.
            vfs.sync_dir().unwrap();
            let f = vfs.create("t.seg").unwrap();
            write_full_at(&f, 0, b"fully fsynced").unwrap();
            f.fsync().unwrap();
            // No sync_dir: content durable, entry volatile.
            drop(f);
            vfs.apply_crash();
            match read_file(&vfs, "t.seg") {
                Ok(bytes) => {
                    // If the entry survived, the fsynced content is whole.
                    assert_eq!(bytes, b"fully fsynced");
                    kept = true;
                }
                Err(_) => lost = true,
            }
        }
        assert!(lost, "no seed lost the unsynced directory entry");
        assert!(kept, "no seed kept the unsynced directory entry");
    }

    #[test]
    fn atomic_publish_is_all_or_nothing_at_every_crash_point() {
        // Learn the op count of a clean publish.
        let probe = SimVfs::new(0);
        write_file_atomic(&probe, "m.tmp", "m", b"manifest-bytes").unwrap();
        let total = probe.op_count();
        assert!(total >= 4, "publish should be several ops, got {total}");
        for crash_at in 0..total {
            for seed in [3, 17] {
                let vfs = SimVfs::new(seed);
                vfs.crash_after(crash_at);
                let err = write_file_atomic(&vfs, "m.tmp", "m", b"manifest-bytes");
                assert!(err.is_err(), "crash point {crash_at} did not trip");
                vfs.apply_crash();
                if let Ok(bytes) = read_file(&vfs, "m") {
                    assert_eq!(
                        bytes, b"manifest-bytes",
                        "crash at op {crash_at} (seed {seed}) left a torn published file"
                    );
                }
            }
        }
        // And a completed publish survives any later crash whole.
        let vfs = SimVfs::new(9);
        write_file_atomic(&vfs, "m.tmp", "m", b"manifest-bytes").unwrap();
        vfs.apply_crash();
        assert_eq!(read_file(&vfs, "m").unwrap(), b"manifest-bytes");
    }

    #[test]
    fn sim_workloads_are_op_deterministic() {
        let run = |seed| {
            let vfs = SimVfs::new(seed);
            write_all(&vfs, "a", b"one").unwrap();
            vfs.sync_dir().unwrap();
            write_all(&vfs, "b", b"two").unwrap();
            vfs.rename("b", "c").unwrap();
            vfs.sync_dir().unwrap();
            vfs.op_count()
        };
        assert_eq!(run(1), run(2));
    }

    #[test]
    fn dir_vfs_roundtrip() {
        let dir = std::env::temp_dir().join(format!("corra_vfs_unit_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let vfs = DirVfs::create(dir.clone()).unwrap();
        write_file_atomic(&vfs, "m.tmp", "m", b"payload").unwrap();
        assert_eq!(vfs.list().unwrap(), vec!["m"]);
        assert_eq!(read_file(&vfs, "m").unwrap(), b"payload");
        vfs.remove("m").unwrap();
        vfs.sync_dir().unwrap();
        assert!(vfs.list().unwrap().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn faulty_vfs_pools_write_faults_across_files() {
        let vfs = FaultyVfs::new(SimVfs::new(4), FaultPlan::none(4).with_fsync_errors(1.0));
        let a = vfs.create("a").unwrap();
        let b = vfs.create("b").unwrap();
        write_full_at(&a, 0, b"x").unwrap();
        write_full_at(&b, 0, b"y").unwrap();
        assert!(a.fsync().is_err());
        assert!(b.fsync().is_err());
        assert_eq!(vfs.injector().stats().failed_fsyncs, 2);
    }
}
