//! Compressed-domain aggregation: `COUNT`/`SUM`/`MIN`/`MAX`/`AVG` (with an
//! optional [`Predicate`] filter and an optional `GROUP BY` on a
//! dictionary-encoded column) evaluated directly on compressed blocks.
//!
//! Until now every aggregate paid full decompress-then-fold; this module
//! closes that gap the same way [`mod@crate::scan`] did for filtering:
//!
//! 1. **Filter** — the optional predicate runs through the existing scan
//!    kernels (zone-map pruning included), producing a selection.
//! 2. **Per-codec folds** — vertical codecs use
//!    [`corra_encodings::AggInt`] / [`corra_encodings::AggStr`] (FOR folds
//!    in the packed offset domain, RLE per run, Dict/Frequency once per
//!    distinct value weighted by counts, Delta streaming); the Corra
//!    horizontal codecs fold through their reference accessors per the
//!    paper's reconstruction rules.
//! 3. **Merge** — per-block partial states ([`IntAggState`] /
//!    [`StrAggState`], `SUM` in `i128` so it never silently wraps) merge
//!    deterministically in block order, which is what makes
//!    [`aggregate_blocks_parallel`] byte-identical to the serial fold for
//!    any thread count.
//!
//! Everything is generic over [`BlockView`], so the same engine runs on
//! in-memory [`CompressedBlock`]s and lazy store
//! [`BlockHandle`](crate::store::BlockHandle)s; the store entry point
//! ([`crate::store::TableReader::aggregate`]) additionally answers
//! fully-covered `COUNT`/`MIN`/`MAX` blocks straight from footer zone maps
//! with zero payload bytes read.

use std::collections::BTreeMap;

use corra_columnar::aggregate::{IntAggState, StrAggState};
use corra_columnar::error::{Error, Result};
use corra_columnar::selection::SelectionVector;
use corra_columnar::stats::ZoneMap;
use corra_encodings::{AggInt, AggStr, IntEncoding};

use crate::compressor::{BlockView, ColumnCodec, CompressedBlock};
use crate::query::{eval_formula_mask, int_column, IntColumn};
use crate::scan::{scan_pruned, validate_pred, Predicate, ScanStats};

/// The aggregate function of an [`AggExpr`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// Row count (of the filtered rows).
    Count,
    /// Sum of an integer column (exact: accumulated in `i128`).
    Sum,
    /// Minimum of an integer or string column.
    Min,
    /// Maximum of an integer or string column.
    Max,
    /// Mean of an integer column (`SUM / COUNT`, computed once from the
    /// merged exact state, so serial and parallel runs agree bit-for-bit).
    Avg,
}

/// An aggregate expression: one function, an optional target column
/// (`COUNT` has none), an optional pushed-down filter, and an optional
/// `GROUP BY` on a dictionary-encoded column (a `Dict` plan or a
/// hierarchical parent).
#[derive(Debug, Clone, PartialEq)]
pub struct AggExpr {
    func: AggFunc,
    column: Option<String>,
    filter: Option<Predicate>,
    group_by: Option<String>,
}

impl AggExpr {
    /// `COUNT(*)` (rows matching the filter, all rows without one).
    pub fn count() -> Self {
        Self {
            func: AggFunc::Count,
            column: None,
            filter: None,
            group_by: None,
        }
    }

    /// `SUM(column)` over an integer column.
    pub fn sum(column: &str) -> Self {
        Self::of(AggFunc::Sum, column)
    }

    /// `MIN(column)` over an integer or string column.
    pub fn min(column: &str) -> Self {
        Self::of(AggFunc::Min, column)
    }

    /// `MAX(column)` over an integer or string column.
    pub fn max(column: &str) -> Self {
        Self::of(AggFunc::Max, column)
    }

    /// `AVG(column)` over an integer column.
    pub fn avg(column: &str) -> Self {
        Self::of(AggFunc::Avg, column)
    }

    /// `func(column)`.
    pub fn of(func: AggFunc, column: &str) -> Self {
        Self {
            func,
            column: Some(column.to_owned()),
            filter: None,
            group_by: None,
        }
    }

    /// Restricts the aggregate to rows matching `pred` (evaluated through
    /// the scan kernels, zone-map pruning included).
    pub fn with_filter(mut self, pred: Predicate) -> Self {
        self.filter = Some(pred);
        self
    }

    /// Groups the aggregate by a dictionary-encoded column; one output row
    /// per group with at least one (matching) row, in ascending key order.
    pub fn with_group_by(mut self, column: &str) -> Self {
        self.group_by = Some(column.to_owned());
        self
    }

    /// The aggregate function.
    pub fn func(&self) -> AggFunc {
        self.func
    }

    /// The target column (`None` for `COUNT`).
    pub fn column(&self) -> Option<&str> {
        self.column.as_deref()
    }

    /// The pushed-down filter, if any.
    pub fn filter(&self) -> Option<&Predicate> {
        self.filter.as_ref()
    }

    /// The `GROUP BY` column, if any.
    pub fn group_by(&self) -> Option<&str> {
        self.group_by.as_deref()
    }
}

/// A scalar aggregate value. Empty inputs follow SQL: `COUNT` is 0,
/// everything else is `None`.
#[derive(Debug, Clone, PartialEq)]
pub enum AggValue {
    /// `COUNT` — always defined.
    Count(u64),
    /// `SUM` — exact (`i128` accumulation, never wraps).
    Sum(Option<i128>),
    /// `MIN`/`MAX` over an integer column.
    Int(Option<i64>),
    /// `MIN`/`MAX` over a string column (lexicographic).
    Str(Option<String>),
    /// `AVG`.
    Avg(Option<f64>),
}

/// A `GROUP BY` key: the group column's dictionary value.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum GroupKey {
    /// Integer-dictionary group key.
    Int(i64),
    /// String-dictionary group key.
    Str(String),
}

/// The result of evaluating an [`AggExpr`].
#[derive(Debug, Clone, PartialEq)]
pub enum AggResult {
    /// Ungrouped: one scalar.
    Scalar(AggValue),
    /// Grouped: `(key, value)` per non-empty group, ascending by key.
    Grouped(Vec<(GroupKey, AggValue)>),
}

impl AggResult {
    /// Borrows the scalar value.
    ///
    /// # Errors
    ///
    /// [`Error::TypeMismatch`] on a grouped result.
    pub fn as_scalar(&self) -> Result<&AggValue> {
        match self {
            AggResult::Scalar(v) => Ok(v),
            AggResult::Grouped(_) => Err(Error::TypeMismatch {
                expected: "scalar aggregate result",
                found: "grouped aggregate result",
            }),
        }
    }

    /// Borrows the grouped rows.
    ///
    /// # Errors
    ///
    /// [`Error::TypeMismatch`] on a scalar result.
    pub fn as_groups(&self) -> Result<&[(GroupKey, AggValue)]> {
        match self {
            AggResult::Grouped(g) => Ok(g),
            AggResult::Scalar(_) => Err(Error::TypeMismatch {
                expected: "grouped aggregate result",
                found: "scalar aggregate result",
            }),
        }
    }
}

/// One block's partial aggregate, merged across blocks by [`AggMerger`].
#[derive(Debug, Clone)]
pub(crate) enum PartialAgg {
    /// Scalar over an integer column (also `COUNT`).
    Int(IntAggState),
    /// Scalar over a string column.
    Str(StrAggState),
    /// Grouped over an integer column (code order within the block).
    GroupedInt(Vec<(GroupKey, IntAggState)>),
    /// Grouped over a string column.
    GroupedStr(Vec<(GroupKey, StrAggState)>),
}

impl PartialAgg {
    /// The typed empty partial for a block contributing no rows, matching
    /// the kinds real evaluation would produce so merges stay well-typed.
    pub(crate) fn empty(string_target: bool, grouped: bool) -> Self {
        match (grouped, string_target) {
            (false, false) => PartialAgg::Int(IntAggState::default()),
            (false, true) => PartialAgg::Str(StrAggState::default()),
            (true, false) => PartialAgg::GroupedInt(Vec::new()),
            (true, true) => PartialAgg::GroupedStr(Vec::new()),
        }
    }
}

/// Deterministic merger of per-block partials: scalars merge through the
/// state algebra, groups merge by key into an ordered map — so the final
/// result is independent of which worker produced which partial, as long
/// as partials are merged in block order (they are: indexed result slots).
#[derive(Debug, Default)]
pub(crate) struct AggMerger {
    acc: Option<MergedAcc>,
}

#[derive(Debug)]
enum MergedAcc {
    Int(IntAggState),
    Str(StrAggState),
    GroupedInt(BTreeMap<GroupKey, IntAggState>),
    GroupedStr(BTreeMap<GroupKey, StrAggState>),
}

impl AggMerger {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Merges one block's partial in.
    ///
    /// # Errors
    ///
    /// [`Error::TypeMismatch`] when blocks disagree on the column's kind
    /// (only possible for ad-hoc block collections with differing schemas).
    pub(crate) fn merge(&mut self, partial: PartialAgg) -> Result<()> {
        let acc = match self.acc.take() {
            None => seed_acc(partial),
            Some(acc) => match (acc, partial) {
                (MergedAcc::Int(mut a), PartialAgg::Int(b)) => {
                    a.merge(&b);
                    MergedAcc::Int(a)
                }
                (MergedAcc::Str(mut a), PartialAgg::Str(b)) => {
                    a.merge(&b);
                    MergedAcc::Str(a)
                }
                (MergedAcc::GroupedInt(mut a), PartialAgg::GroupedInt(b)) => {
                    for (k, s) in b {
                        a.entry(k).or_default().merge(&s);
                    }
                    MergedAcc::GroupedInt(a)
                }
                (MergedAcc::GroupedStr(mut a), PartialAgg::GroupedStr(b)) => {
                    for (k, s) in b {
                        a.entry(k).or_default().merge(&s);
                    }
                    MergedAcc::GroupedStr(a)
                }
                _ => {
                    return Err(Error::TypeMismatch {
                        expected: "aggregate partials of one column kind",
                        found: "blocks disagreeing on the column kind",
                    })
                }
            },
        };
        self.acc = Some(acc);
        Ok(())
    }

    /// Finalizes into the requested function's result.
    pub(crate) fn finish(self, expr: &AggExpr) -> AggResult {
        match self.acc {
            None => {
                // Zero blocks: the empty result (grouped: no groups;
                // scalar: SQL empty semantics, integer-typed).
                if expr.group_by.is_some() {
                    AggResult::Grouped(Vec::new())
                } else {
                    AggResult::Scalar(finalize_int(expr.func, &IntAggState::default()))
                }
            }
            Some(MergedAcc::Int(s)) => AggResult::Scalar(finalize_int(expr.func, &s)),
            Some(MergedAcc::Str(s)) => AggResult::Scalar(finalize_str(expr.func, &s)),
            Some(MergedAcc::GroupedInt(m)) => AggResult::Grouped(
                m.into_iter()
                    .map(|(k, s)| (k, finalize_int(expr.func, &s)))
                    .collect(),
            ),
            Some(MergedAcc::GroupedStr(m)) => AggResult::Grouped(
                m.into_iter()
                    .map(|(k, s)| (k, finalize_str(expr.func, &s)))
                    .collect(),
            ),
        }
    }
}

fn seed_acc(partial: PartialAgg) -> MergedAcc {
    match partial {
        PartialAgg::Int(s) => MergedAcc::Int(s),
        PartialAgg::Str(s) => MergedAcc::Str(s),
        PartialAgg::GroupedInt(v) => {
            let mut m = BTreeMap::new();
            for (k, s) in v {
                m.entry(k).or_insert_with(IntAggState::default).merge(&s);
            }
            MergedAcc::GroupedInt(m)
        }
        PartialAgg::GroupedStr(v) => {
            let mut m = BTreeMap::new();
            for (k, s) in v {
                m.entry(k).or_insert_with(StrAggState::default).merge(&s);
            }
            MergedAcc::GroupedStr(m)
        }
    }
}

fn finalize_int(func: AggFunc, s: &IntAggState) -> AggValue {
    match func {
        AggFunc::Count => AggValue::Count(s.count),
        AggFunc::Sum => AggValue::Sum((s.count > 0).then_some(s.sum)),
        AggFunc::Min => AggValue::Int(s.min),
        AggFunc::Max => AggValue::Int(s.max),
        AggFunc::Avg => AggValue::Avg(s.avg()),
    }
}

fn finalize_str(func: AggFunc, s: &StrAggState) -> AggValue {
    match func {
        AggFunc::Count => AggValue::Count(s.count),
        AggFunc::Min => AggValue::Str(s.min.clone()),
        AggFunc::Max => AggValue::Str(s.max.clone()),
        // Rejected by validation before any kernel runs.
        AggFunc::Sum | AggFunc::Avg => unreachable!("SUM/AVG on strings is validated away"),
    }
}

fn is_string_codec(codec: &ColumnCodec) -> bool {
    matches!(
        codec,
        ColumnCodec::Str(_) | ColumnCodec::PlainStr(_) | ColumnCodec::HierStr { .. }
    )
}

/// Checks a `GROUP BY` column's codec exposes dictionary codes. Shared
/// with the store, whose footer cannot distinguish dictionary from other
/// vertical integer layouts — it loads this one codec to check, so
/// zone-short-circuited blocks error exactly like the in-memory engine.
pub(crate) fn validate_group_codec(codec: &ColumnCodec, group: &str) -> Result<()> {
    match codec {
        ColumnCodec::Int(IntEncoding::Dict(_)) | ColumnCodec::Str(_) => Ok(()),
        _ => Err(Error::invalid(format!(
            "GROUP BY column {group} must be dictionary-encoded \
             (a Dict plan or a hierarchical parent)"
        ))),
    }
}

/// Validates the whole expression against one block up front — unknown
/// columns, `SUM`/`AVG` on strings, a non-dictionary `GROUP BY` column and
/// malformed filters error deterministically, before any kernel runs and
/// regardless of what the filter selects.
pub(crate) fn validate_expr<B: BlockView + ?Sized>(block: &B, expr: &AggExpr) -> Result<()> {
    if let Some(pred) = &expr.filter {
        validate_pred(block, pred)?;
    }
    match (&expr.column, expr.func) {
        (None, AggFunc::Count) => {}
        (None, _) => return Err(Error::invalid("aggregate function requires a column")),
        (Some(col), func) => {
            let idx = block.index_of(col)?;
            if is_string_codec(block.view_codec(idx)?)
                && matches!(func, AggFunc::Sum | AggFunc::Avg)
            {
                return Err(Error::TypeMismatch {
                    expected: "integer column for SUM/AVG",
                    found: "string column",
                });
            }
        }
    }
    if let Some(group) = &expr.group_by {
        let idx = block.index_of(group)?;
        validate_group_codec(block.view_codec(idx)?, group)?;
    }
    Ok(())
}

/// Evaluates `expr` against one block, returning
/// `(partial, filter_pruned, rows_matched)`. `filter_pruned` is true when
/// the filter (if any) was answered entirely from zone maps.
pub(crate) fn aggregate_partial<B: BlockView + ?Sized>(
    block: &B,
    expr: &AggExpr,
) -> Result<(PartialAgg, bool, usize)> {
    validate_expr(block, expr)?;
    let rows = block.rows();
    // `None` means "all rows": full-column fast paths apply.
    let (sel, pruned) = match &expr.filter {
        None => (None, false),
        Some(pred) => {
            let (s, pruned) = scan_pruned(block, pred)?;
            if s.len() == rows {
                (None, pruned)
            } else {
                (Some(s), pruned)
            }
        }
    };
    let matched = sel.as_ref().map_or(rows, SelectionVector::len);
    let partial = if expr.group_by.is_some() {
        eval_grouped(block, expr, sel.as_ref())?
    } else {
        eval_scalar(block, expr, sel.as_ref())?
    };
    Ok((partial, pruned, matched))
}

/// Ungrouped evaluation: one fold over the full column or the selection.
fn eval_scalar<B: BlockView + ?Sized>(
    block: &B,
    expr: &AggExpr,
    sel: Option<&SelectionVector>,
) -> Result<PartialAgg> {
    let Some(col) = &expr.column else {
        // COUNT(*): the selection length is the answer — no payload fold.
        let count = sel.map_or(block.rows(), SelectionVector::len) as u64;
        return Ok(PartialAgg::Int(IntAggState {
            count,
            ..IntAggState::default()
        }));
    };
    let idx = block.index_of(col)?;
    match block.view_codec(idx)? {
        ColumnCodec::Str(enc) => {
            let mut state = StrAggState::default();
            match sel {
                None => enc.aggregate_into(&mut state),
                Some(s) => enc.aggregate_selected(s, &mut state),
            }
            return Ok(PartialAgg::Str(state));
        }
        ColumnCodec::PlainStr(pool) => {
            let mut state = StrAggState::default();
            match sel {
                None => {
                    for s in pool.iter() {
                        state.update(s);
                    }
                }
                Some(sel) => {
                    for &p in sel.positions() {
                        state.update(pool.get(p as usize));
                    }
                }
            }
            return Ok(PartialAgg::Str(state));
        }
        ColumnCodec::HierStr { enc, reference } => {
            let codes = crate::query::code_access(block, *reference as usize)?;
            let mut state = StrAggState::default();
            match sel {
                None => enc.aggregate_with_parents(|i| codes.code(i), &mut state),
                Some(s) => enc.aggregate_selected_with_parents(s, |i| codes.code(i), &mut state),
            }
            return Ok(PartialAgg::Str(state));
        }
        _ => {}
    }
    let mut state = IntAggState::default();
    match int_column(block, idx)? {
        IntColumn::Vertical(enc) => match sel {
            None => enc.aggregate_into(&mut state),
            Some(s) => enc.aggregate_selected(s, &mut state),
        },
        IntColumn::NonHier { enc, refs } => match sel {
            None => enc.aggregate_map(|i| refs.get(i), &mut state),
            Some(s) => enc.aggregate_selected_map(s, |i| refs.get(i), &mut state),
        },
        IntColumn::Hier { enc, codes } => match sel {
            None => enc.aggregate_with_parents(|i| codes.code(i), &mut state),
            Some(s) => enc.aggregate_selected_with_parents(s, |i| codes.code(i), &mut state),
        },
        IntColumn::MultiRef { enc, members } => {
            let eval = |mask: u8, i: usize| eval_formula_mask(&members, mask, i);
            match sel {
                None => enc.aggregate_masked(eval, &mut state),
                Some(s) => enc.aggregate_selected_masked(s, eval, &mut state),
            }
        }
    }
    Ok(PartialAgg::Int(state))
}

/// Grouped evaluation: group keys and per-row codes come from the group
/// column's dictionary; filtered-out rows are routed to a trailing discard
/// group so every codec needs exactly one grouped kernel.
fn eval_grouped<B: BlockView + ?Sized>(
    block: &B,
    expr: &AggExpr,
    sel: Option<&SelectionVector>,
) -> Result<PartialAgg> {
    let group_col = expr.group_by.as_deref().expect("caller checked group_by");
    let gidx = block.index_of(group_col)?;
    let (keys, mut codes): (Vec<GroupKey>, Vec<u32>) = match block.view_codec(gidx)? {
        ColumnCodec::Int(IntEncoding::Dict(d)) => {
            let mut c = Vec::new();
            d.codes_into(&mut c);
            (d.dict().iter().map(|&v| GroupKey::Int(v)).collect(), c)
        }
        ColumnCodec::Str(d) => {
            let mut c = Vec::new();
            d.codes_into(&mut c);
            (
                (0..d.distinct())
                    .map(|k| GroupKey::Str(d.pool().get(k).to_owned()))
                    .collect(),
                c,
            )
        }
        other => {
            validate_group_codec(other, group_col)?;
            unreachable!("dictionary codecs are matched above")
        }
    };
    let n_groups = keys.len();
    // Route filtered-out rows to a trailing discard group, dropped below.
    let n_states = n_groups + usize::from(sel.is_some());
    if let Some(s) = sel {
        let mut keep = vec![false; block.rows()];
        for &p in s.positions() {
            keep[p as usize] = true;
        }
        for (i, c) in codes.iter_mut().enumerate() {
            if !keep[i] {
                *c = n_groups as u32;
            }
        }
    }
    // COUNT(*) per group: the code histogram is the whole aggregate.
    let Some(col) = &expr.column else {
        let mut counts = vec![0u64; n_states];
        for &c in &codes {
            counts[c as usize] += 1;
        }
        return Ok(PartialAgg::GroupedInt(
            keys.into_iter()
                .zip(&counts)
                .filter(|(_, &n)| n > 0)
                .map(|(k, &n)| {
                    (
                        k,
                        IntAggState {
                            count: n,
                            ..IntAggState::default()
                        },
                    )
                })
                .collect(),
        ));
    };
    let idx = block.index_of(col)?;
    match block.view_codec(idx)? {
        ColumnCodec::Str(enc) => {
            let mut states = vec![StrAggState::default(); n_states];
            enc.aggregate_grouped(&codes, &mut states);
            return Ok(collect_grouped_str(keys, states));
        }
        ColumnCodec::PlainStr(pool) => {
            let mut states = vec![StrAggState::default(); n_states];
            for (i, &c) in codes.iter().enumerate() {
                states[c as usize].update(pool.get(i));
            }
            return Ok(collect_grouped_str(keys, states));
        }
        ColumnCodec::HierStr { enc, reference } => {
            let pcodes = crate::query::code_access(block, *reference as usize)?;
            let mut states = vec![StrAggState::default(); n_states];
            enc.aggregate_grouped_with_parents(&codes, |i| pcodes.code(i), &mut states);
            return Ok(collect_grouped_str(keys, states));
        }
        _ => {}
    }
    let mut states = vec![IntAggState::default(); n_states];
    match int_column(block, idx)? {
        IntColumn::Vertical(enc) => enc.aggregate_grouped(&codes, &mut states),
        IntColumn::NonHier { enc, refs } => {
            enc.aggregate_grouped_map(&codes, |i| refs.get(i), &mut states)
        }
        IntColumn::Hier { enc, codes: pcodes } => {
            enc.aggregate_grouped_with_parents(&codes, |i| pcodes.code(i), &mut states)
        }
        IntColumn::MultiRef { enc, members } => enc.aggregate_grouped_masked(
            &codes,
            |mask, i| eval_formula_mask(&members, mask, i),
            &mut states,
        ),
    }
    Ok(PartialAgg::GroupedInt(
        keys.into_iter()
            .zip(states)
            .filter(|(_, s)| s.count > 0)
            .collect(),
    ))
}

fn collect_grouped_str(keys: Vec<GroupKey>, states: Vec<StrAggState>) -> PartialAgg {
    PartialAgg::GroupedStr(
        keys.into_iter()
            .zip(states)
            .filter(|(_, s)| s.count > 0)
            .collect(),
    )
}

/// Evaluates `expr` against one block (in-memory or a lazy store handle).
///
/// # Errors
///
/// Unknown columns, `SUM`/`AVG` on a string column, a `GROUP BY` column
/// that is not dictionary-encoded, malformed filters — all validated up
/// front — plus anything a lazy view reports while loading payloads.
pub fn aggregate<B: BlockView + ?Sized>(block: &B, expr: &AggExpr) -> Result<AggResult> {
    let (partial, _, _) = aggregate_partial(block, expr)?;
    let mut merger = AggMerger::new();
    merger.merge(partial)?;
    Ok(merger.finish(expr))
}

/// Evaluates `expr` across many blocks, merging per-block partial states
/// in block order. Returns the result plus [`ScanStats`] (`rows_matched` =
/// rows aggregated; `blocks_pruned` = blocks whose *filter* was answered
/// from zone maps without a kernel).
///
/// # Errors
///
/// As [`aggregate`].
pub fn aggregate_blocks(
    blocks: &[CompressedBlock],
    expr: &AggExpr,
) -> Result<(AggResult, ScanStats)> {
    let mut merger = AggMerger::new();
    let mut stats = ScanStats::default();
    for block in blocks {
        let (partial, pruned, matched) = aggregate_partial(block, expr)?;
        stats.blocks += 1;
        stats.blocks_pruned += usize::from(pruned);
        stats.rows_total += block.rows();
        stats.rows_matched += matched;
        merger.merge(partial)?;
    }
    Ok((merger.finish(expr), stats))
}

/// Morsel-driven parallel [`aggregate_blocks`]: `threads` scoped workers
/// pull block morsels off a shared atomic counter (mirroring
/// [`crate::scan::scan_blocks_parallel`]); per-block partials land in
/// indexed slots and merge in block order, so the result — including the
/// exact `i128` sums — is byte-identical to the serial fold for any thread
/// count.
///
/// # Errors
///
/// As [`aggregate_blocks`]; worker panics surface as errors.
pub fn aggregate_blocks_parallel(
    blocks: &[CompressedBlock],
    expr: &AggExpr,
    threads: usize,
) -> Result<(AggResult, ScanStats)> {
    let threads = threads.max(1).min(blocks.len().max(1));
    if threads <= 1 || blocks.len() <= 1 {
        return aggregate_blocks(blocks, expr);
    }
    type Slot = std::sync::Mutex<Option<Result<(PartialAgg, bool, usize)>>>;
    let slots: Vec<Slot> = (0..blocks.len())
        .map(|_| std::sync::Mutex::new(None))
        .collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let panicked = std::thread::scope(|s| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= blocks.len() {
                        break;
                    }
                    let partial = aggregate_partial(&blocks[i], expr);
                    *slots[i].lock().expect("aggregate slot poisoned") = Some(partial);
                })
            })
            .collect();
        workers.into_iter().any(|w| w.join().is_err())
    });
    if panicked {
        return Err(Error::invalid("parallel aggregate worker panicked"));
    }
    let mut merger = AggMerger::new();
    let mut stats = ScanStats::default();
    for (slot, block) in slots.into_iter().zip(blocks) {
        let (partial, pruned, matched) = slot
            .into_inner()
            .expect("aggregate slot poisoned")
            .expect("every block visited")?;
        stats.blocks += 1;
        stats.blocks_pruned += usize::from(pruned);
        stats.rows_total += block.rows();
        stats.rows_matched += matched;
        merger.merge(partial)?;
    }
    Ok((merger.finish(expr), stats))
}

/// *Exact* min/max bounds for the column at `idx`, or `None` when only
/// covering (or no) bounds exist. Unlike [`crate::scan::column_bounds`] —
/// which may overshoot (FOR's `base + 2^bits - 1`) and is therefore only
/// sound for pruning — these bounds are the true column extremes, so the
/// table writer records them in the footer and the store answers
/// fully-covered `MIN`/`MAX` aggregates from them with zero payload reads.
/// Costs at most one streaming pass (write-time only).
pub fn exact_column_bounds<B: BlockView + ?Sized>(block: &B, idx: usize) -> Option<ZoneMap> {
    match block.view_codec(idx).ok()? {
        ColumnCodec::Int(enc) => enc.exact_bounds(),
        // Every hierarchical metadata value occurs in some row, so the
        // metadata extremes are exact.
        ColumnCodec::HierInt { enc, .. } => enc.value_bounds(),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compressor::{ColumnPlan, CompressionConfig};
    use corra_columnar::block::DataBlock;
    use corra_columnar::column::{Column, DataType};
    use corra_columnar::schema::{Field, Schema};
    use corra_columnar::strings::StringPool;

    fn mixed_block(n: usize, salt: i64) -> (DataBlock, CompressionConfig) {
        let city = StringPool::from_iter((0..n).map(|i| ["NYC", "Albany", "Naples"][i % 3]));
        let zip: Vec<i64> = (0..n)
            .map(|i| 10_000 + (i % 3) as i64 * 50 + (i / 3 % 4) as i64)
            .collect();
        let ship: Vec<i64> = (0..n)
            .map(|i| salt + 8_035 + (i as i64 * 17 % 2_000))
            .collect();
        let receipt: Vec<i64> = ship
            .iter()
            .enumerate()
            .map(|(i, &s)| s + 1 + (i as i64 % 30))
            .collect();
        let fee: Vec<i64> = (0..n).map(|i| 100 + (i as i64 % 10)).collect();
        let extra: Vec<i64> = vec![25; n];
        let total: Vec<i64> = (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    fee[i]
                } else {
                    fee[i] + extra[i]
                }
            })
            .collect();
        let block = DataBlock::new(
            Schema::new(vec![
                Field::new("city", DataType::Utf8),
                Field::new("zip", DataType::Int64),
                Field::new("l_shipdate", DataType::Date),
                Field::new("l_receiptdate", DataType::Date),
                Field::new("fee", DataType::Int64),
                Field::new("extra", DataType::Int64),
                Field::new("total", DataType::Int64),
            ])
            .unwrap(),
            vec![
                Column::Utf8(city),
                Column::Int64(zip),
                Column::Int64(ship),
                Column::Int64(receipt),
                Column::Int64(fee),
                Column::Int64(extra),
                Column::Int64(total),
            ],
        )
        .unwrap();
        let cfg = CompressionConfig::baseline()
            .with(
                "zip",
                ColumnPlan::Hier {
                    reference: "city".into(),
                },
            )
            .with(
                "l_receiptdate",
                ColumnPlan::NonHier {
                    reference: "l_shipdate".into(),
                },
            )
            .with(
                "total",
                ColumnPlan::MultiRef {
                    groups: vec![vec!["fee".into()], vec!["extra".into()]],
                    code_bits: 2,
                },
            );
        (block, cfg)
    }

    fn naive_int(values: &[i64], keep: impl Fn(usize) -> bool) -> IntAggState {
        let mut s = IntAggState::default();
        for (i, &v) in values.iter().enumerate() {
            if keep(i) {
                s.update(v);
            }
        }
        s
    }

    #[test]
    fn scalar_aggregates_match_decompress_then_fold() {
        let (raw, cfg) = mixed_block(5_000, 0);
        let compressed = CompressedBlock::compress(&raw, &cfg).unwrap();
        for col in ["zip", "l_shipdate", "l_receiptdate", "fee", "total"] {
            let values = raw.column(col).unwrap().as_i64().unwrap();
            let want = naive_int(values, |_| true);
            let got = aggregate(&compressed, &AggExpr::sum(col)).unwrap();
            assert_eq!(
                got.as_scalar().unwrap(),
                &AggValue::Sum(Some(want.sum)),
                "{col}"
            );
            let got = aggregate(&compressed, &AggExpr::min(col)).unwrap();
            assert_eq!(got.as_scalar().unwrap(), &AggValue::Int(want.min), "{col}");
            let got = aggregate(&compressed, &AggExpr::max(col)).unwrap();
            assert_eq!(got.as_scalar().unwrap(), &AggValue::Int(want.max), "{col}");
            let got = aggregate(&compressed, &AggExpr::avg(col)).unwrap();
            assert_eq!(
                got.as_scalar().unwrap(),
                &AggValue::Avg(want.avg()),
                "{col}"
            );
        }
        let got = aggregate(&compressed, &AggExpr::count()).unwrap();
        assert_eq!(got.as_scalar().unwrap(), &AggValue::Count(5_000));
    }

    #[test]
    fn filtered_aggregates_match_oracle() {
        let (raw, cfg) = mixed_block(4_000, 0);
        let compressed = CompressedBlock::compress(&raw, &cfg).unwrap();
        let ship = raw.column("l_shipdate").unwrap().as_i64().unwrap();
        let receipt = raw.column("l_receiptdate").unwrap().as_i64().unwrap();
        let pred = Predicate::between("l_shipdate", 8_200, 9_000);
        let keep = |i: usize| (8_200..=9_000).contains(&ship[i]);
        let want = naive_int(receipt, keep);
        let expr = AggExpr::sum("l_receiptdate").with_filter(pred.clone());
        let got = aggregate(&compressed, &expr).unwrap();
        assert_eq!(got.as_scalar().unwrap(), &AggValue::Sum(Some(want.sum)));
        let expr = AggExpr::count().with_filter(pred.clone());
        let got = aggregate(&compressed, &expr).unwrap();
        assert_eq!(got.as_scalar().unwrap(), &AggValue::Count(want.count));
        // A filter that misses everything: SQL empty semantics.
        let none = Predicate::lt("l_shipdate", 0);
        let got = aggregate(&compressed, &AggExpr::min("fee").with_filter(none.clone())).unwrap();
        assert_eq!(got.as_scalar().unwrap(), &AggValue::Int(None));
        let got = aggregate(&compressed, &AggExpr::sum("fee").with_filter(none)).unwrap();
        assert_eq!(got.as_scalar().unwrap(), &AggValue::Sum(None));
    }

    #[test]
    fn grouped_aggregates_match_oracle() {
        let (raw, cfg) = mixed_block(3_000, 0);
        let compressed = CompressedBlock::compress(&raw, &cfg).unwrap();
        let zips = raw.column("zip").unwrap().as_i64().unwrap();
        // Group by the string parent: per-city zip sums.
        let expr = AggExpr::sum("zip").with_group_by("city");
        let got = aggregate(&compressed, &expr).unwrap();
        let mut want: BTreeMap<GroupKey, i128> = BTreeMap::new();
        for i in 0..3_000 {
            let city = ["NYC", "Albany", "Naples"][i % 3].to_owned();
            *want.entry(GroupKey::Str(city)).or_default() += zips[i] as i128;
        }
        let groups = got.as_groups().unwrap();
        assert_eq!(groups.len(), 3);
        for (k, v) in groups {
            assert_eq!(v, &AggValue::Sum(Some(want[k])), "{k:?}");
        }
        // Grouped count with a filter drops non-matching rows per group.
        let expr = AggExpr::count()
            .with_group_by("city")
            .with_filter(Predicate::between("zip", 10_050, 10_099));
        let got = aggregate(&compressed, &expr).unwrap();
        let groups = got.as_groups().unwrap();
        assert_eq!(groups.len(), 1, "{groups:?}");
        assert_eq!(groups[0].0, GroupKey::Str("Albany".to_owned()));
        assert_eq!(groups[0].1, AggValue::Count(1_000));
        // Grouped string target: lexicographic min city per city is itself.
        let expr = AggExpr::min("city").with_group_by("city");
        let got = aggregate(&compressed, &expr).unwrap();
        for (k, v) in got.as_groups().unwrap() {
            let GroupKey::Str(city) = k else { panic!() };
            assert_eq!(v, &AggValue::Str(Some(city.clone())));
        }
    }

    #[test]
    fn string_min_max_and_type_errors() {
        let (raw, cfg) = mixed_block(300, 0);
        let compressed = CompressedBlock::compress(&raw, &cfg).unwrap();
        let got = aggregate(&compressed, &AggExpr::min("city")).unwrap();
        assert_eq!(
            got.as_scalar().unwrap(),
            &AggValue::Str(Some("Albany".to_owned()))
        );
        // Byte-wise comparison: uppercase sorts before lowercase, so
        // "NYC" < "Naples".
        let got = aggregate(&compressed, &AggExpr::max("city")).unwrap();
        assert_eq!(
            got.as_scalar().unwrap(),
            &AggValue::Str(Some("Naples".to_owned()))
        );
        // SUM/AVG on strings and unknown columns error deterministically,
        // even when the filter would empty the selection first.
        assert!(aggregate(&compressed, &AggExpr::sum("city")).is_err());
        assert!(aggregate(&compressed, &AggExpr::avg("city")).is_err());
        assert!(aggregate(&compressed, &AggExpr::sum("nope")).is_err());
        let expr = AggExpr::sum("city").with_filter(Predicate::lt("zip", 0));
        assert!(aggregate(&compressed, &expr).is_err());
        // GROUP BY must name a dictionary-encoded column.
        let expr = AggExpr::count().with_group_by("l_shipdate");
        assert!(aggregate(&compressed, &expr).is_err());
        // Accessor mismatches on AggResult.
        let got = aggregate(&compressed, &AggExpr::count()).unwrap();
        assert!(got.as_groups().is_err());
        let got = aggregate(&compressed, &AggExpr::count().with_group_by("city")).unwrap();
        assert!(got.as_scalar().is_err());
    }

    #[test]
    fn multi_block_serial_equals_parallel() {
        let blocks: Vec<CompressedBlock> = [0, 50_000, 100_000]
            .iter()
            .map(|&salt| {
                let (raw, cfg) = mixed_block(1_500, salt);
                CompressedBlock::compress(&raw, &cfg).unwrap()
            })
            .collect();
        for expr in [
            AggExpr::sum("l_receiptdate"),
            AggExpr::min("l_shipdate"),
            AggExpr::count().with_filter(Predicate::ge("l_shipdate", 50_000)),
            AggExpr::avg("total").with_group_by("city"),
            AggExpr::max("city").with_group_by("city"),
        ] {
            let (want, want_stats) = aggregate_blocks(&blocks, &expr).unwrap();
            for threads in 1..=8 {
                let (got, stats) = aggregate_blocks_parallel(&blocks, &expr, threads).unwrap();
                assert_eq!(got, want, "{expr:?} threads {threads}");
                assert_eq!(stats, want_stats, "{expr:?} threads {threads}");
            }
        }
        // Zero blocks: the typed empty result.
        let (got, stats) = aggregate_blocks(&[], &AggExpr::count()).unwrap();
        assert_eq!(got, AggResult::Scalar(AggValue::Count(0)));
        assert_eq!(stats.blocks, 0);
        let (got, _) = aggregate_blocks(&[], &AggExpr::sum("x").with_group_by("g")).unwrap();
        assert_eq!(got, AggResult::Grouped(Vec::new()));
    }

    #[test]
    fn parallel_propagates_errors() {
        let (raw, cfg) = mixed_block(100, 0);
        let compressed = CompressedBlock::compress(&raw, &cfg).unwrap();
        let blocks = vec![compressed.clone(), compressed];
        assert!(aggregate_blocks_parallel(&blocks, &AggExpr::sum("nope"), 4).is_err());
    }

    #[test]
    fn empty_block_aggregates_empty() {
        let block = DataBlock::new(
            Schema::new(vec![Field::new("v", DataType::Int64)]).unwrap(),
            vec![Column::Int64(Vec::new())],
        )
        .unwrap();
        let compressed = CompressedBlock::compress(&block, &CompressionConfig::baseline()).unwrap();
        let got = aggregate(&compressed, &AggExpr::count()).unwrap();
        assert_eq!(got.as_scalar().unwrap(), &AggValue::Count(0));
        let got = aggregate(&compressed, &AggExpr::min("v")).unwrap();
        assert_eq!(got.as_scalar().unwrap(), &AggValue::Int(None));
        let got = aggregate(&compressed, &AggExpr::avg("v")).unwrap();
        assert_eq!(got.as_scalar().unwrap(), &AggValue::Avg(None));
    }

    #[test]
    fn exact_bounds_are_exact_where_covering_bounds_overshoot() {
        // FOR's covering zone overshoots to base + 2^bits - 1; the exact
        // bounds must be the true extremes.
        let (raw, cfg) = mixed_block(1_000, 0);
        let compressed = CompressedBlock::compress(&raw, &cfg).unwrap();
        let ship = raw.column("l_shipdate").unwrap().as_i64().unwrap();
        let idx = compressed.index_of("l_shipdate").unwrap();
        let zone = exact_column_bounds(&compressed, idx).unwrap();
        assert_eq!(zone.min, *ship.iter().min().unwrap());
        assert_eq!(zone.max, *ship.iter().max().unwrap());
        // Hier metadata bounds are exact too.
        let idx = compressed.index_of("zip").unwrap();
        let zone = exact_column_bounds(&compressed, idx).unwrap();
        let zips = raw.column("zip").unwrap().as_i64().unwrap();
        assert_eq!(zone.min, *zips.iter().min().unwrap());
        assert_eq!(zone.max, *zips.iter().max().unwrap());
        // Strings and diff-encoded columns expose no exact bounds.
        let idx = compressed.index_of("city").unwrap();
        assert!(exact_column_bounds(&compressed, idx).is_none());
        let idx = compressed.index_of("l_receiptdate").unwrap();
        assert!(exact_column_bounds(&compressed, idx).is_none());
    }
}
