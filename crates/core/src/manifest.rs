//! The segment manifest: the one durable record of which segments make up
//! a writable table.
//!
//! A table directory holds immutable segment files (`seg-000007.corra`)
//! and a chain of immutable, numbered manifest files
//! (`manifest-000012.man`). Each manifest lists the complete live segment
//! set at one instant; publishing a new state means writing the *next*
//! number via temp-file + fsync + rename + directory fsync
//! ([`crate::vfs::write_file_atomic`]) — never editing an existing file.
//! Two invariants follow:
//!
//! 1. **Atomicity** — a crash at any instant leaves each published
//!    manifest either complete (rename survived, content was fsynced
//!    first) or absent (rename lost). Never torn: the self-checksum over
//!    the whole record rejects any partially-surviving temp file.
//! 2. **Recoverability** — recovery scans the directory for the
//!    highest-numbered manifest that decodes cleanly *and* whose segments
//!    all open cleanly, falling back down the chain otherwise. Because a
//!    commit fsyncs segment data before the rename, and the directory
//!    fsync that publishes the rename also publishes the segment's
//!    directory entry, a durable manifest name implies durable segments.
//!
//! The byte layout is documented in `docs/FORMAT.md`; the checksum is the
//! store-wide FNV-1a [`checksum64`], verified over the entire record
//! *before* any field is parsed — hostile bytes must fail closed.

use corra_columnar::error::{Error, Result};

use crate::io::checksum64;
use crate::vfs::{read_file, write_file_atomic, Vfs};

/// Magic prefix of every manifest file.
pub const MANIFEST_MAGIC: [u8; 8] = *b"CORRAMAN";

/// Current manifest format version.
pub const MANIFEST_VERSION: u32 = 1;

/// One live segment as recorded in a [`Manifest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentEntry {
    /// The segment's allocation number (never reused within a table).
    pub seq: u64,
    /// File name inside the table directory.
    pub name: String,
    /// Rows stored in the segment.
    pub rows: u64,
    /// Exact file length in bytes — a cheap torn-tail check before the
    /// segment footer's own checksums run.
    pub file_len: u64,
}

/// A complete, immutable snapshot of a table's live segment list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// This manifest's number in the chain (strictly increasing).
    pub seq: u64,
    /// Live segments, in table order (scan order = concatenation).
    pub segments: Vec<SegmentEntry>,
}

impl Manifest {
    /// An empty table's first manifest.
    #[must_use]
    pub fn empty(seq: u64) -> Self {
        Self {
            seq,
            segments: Vec::new(),
        }
    }

    /// Total rows across all live segments.
    #[must_use]
    pub fn rows(&self) -> u64 {
        self.segments.iter().map(|s| s.rows).sum()
    }

    /// The file name this manifest publishes under.
    #[must_use]
    pub fn file_name(&self) -> String {
        manifest_file_name(self.seq)
    }

    /// Serializes the manifest with its trailing self-checksum.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.segments.len() * 48);
        out.extend_from_slice(&MANIFEST_MAGIC);
        out.extend_from_slice(&MANIFEST_VERSION.to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(
            &(u32::try_from(self.segments.len()).expect("segment count fits")).to_le_bytes(),
        );
        for seg in &self.segments {
            out.extend_from_slice(&seg.seq.to_le_bytes());
            out.extend_from_slice(&seg.rows.to_le_bytes());
            out.extend_from_slice(&seg.file_len.to_le_bytes());
            let name = seg.name.as_bytes();
            out.extend_from_slice(
                &(u16::try_from(name.len()).expect("segment name fits")).to_le_bytes(),
            );
            out.extend_from_slice(name);
        }
        let sum = checksum64(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Parses and validates a manifest record. The self-checksum is
    /// verified over the whole record **before** any field is trusted, so
    /// bit flips and truncations fail closed.
    ///
    /// # Errors
    ///
    /// Corrupt, truncated, or wrong-version records.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        const HEADER: usize = 8 + 4 + 8 + 4;
        if bytes.len() < HEADER + 8 {
            return Err(Error::corrupt(format!(
                "manifest too short: {} bytes",
                bytes.len()
            )));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
        if checksum64(body) != stored {
            return Err(Error::corrupt("manifest checksum mismatch"));
        }
        if body[..8] != MANIFEST_MAGIC {
            return Err(Error::corrupt("manifest magic mismatch"));
        }
        let version = u32::from_le_bytes(body[8..12].try_into().expect("4 bytes"));
        if version != MANIFEST_VERSION {
            return Err(Error::corrupt(format!(
                "unsupported manifest version {version}"
            )));
        }
        let seq = u64::from_le_bytes(body[12..20].try_into().expect("8 bytes"));
        let n = u32::from_le_bytes(body[20..24].try_into().expect("4 bytes")) as usize;
        let mut cursor = HEADER;
        let mut segments = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            if body.len() < cursor + 26 {
                return Err(Error::corrupt("manifest entry truncated"));
            }
            let seg_seq = u64::from_le_bytes(body[cursor..cursor + 8].try_into().expect("8"));
            let rows = u64::from_le_bytes(body[cursor + 8..cursor + 16].try_into().expect("8"));
            let file_len =
                u64::from_le_bytes(body[cursor + 16..cursor + 24].try_into().expect("8"));
            let name_len =
                u16::from_le_bytes(body[cursor + 24..cursor + 26].try_into().expect("2")) as usize;
            cursor += 26;
            if body.len() < cursor + name_len {
                return Err(Error::corrupt("manifest entry name truncated"));
            }
            let name = std::str::from_utf8(&body[cursor..cursor + name_len])
                .map_err(|_| Error::corrupt("manifest entry name not utf-8"))?
                .to_owned();
            cursor += name_len;
            segments.push(SegmentEntry {
                seq: seg_seq,
                name,
                rows,
                file_len,
            });
        }
        if cursor != body.len() {
            return Err(Error::corrupt("manifest has trailing bytes"));
        }
        Ok(Self { seq, segments })
    }

    /// Publishes this manifest atomically (temp + fsync + rename + dir
    /// fsync). After `Ok`, this manifest is the durable newest state.
    ///
    /// # Errors
    ///
    /// Underlying I/O failures — the publish must be treated as not
    /// having happened (though it *may* have; callers that cannot tell
    /// must stop issuing new numbers until recovery re-reads the
    /// directory).
    pub fn publish(&self, vfs: &dyn Vfs) -> Result<()> {
        write_file_atomic(
            vfs,
            &manifest_tmp_name(self.seq),
            &self.file_name(),
            &self.encode(),
        )
    }
}

/// The published file name for manifest number `seq`.
#[must_use]
pub fn manifest_file_name(seq: u64) -> String {
    format!("manifest-{seq:06}.man")
}

/// The temporary file name manifest `seq` is staged under before rename.
#[must_use]
pub fn manifest_tmp_name(seq: u64) -> String {
    format!("manifest-{seq:06}.tmp")
}

/// The file name for segment number `seq`.
#[must_use]
pub fn segment_file_name(seq: u64) -> String {
    format!("seg-{seq:06}.corra")
}

/// The manifest number of a *published* manifest file name.
#[must_use]
pub fn manifest_seq_of(name: &str) -> Option<u64> {
    parse_seq(name, "manifest-", ".man")
}

/// The segment number of a segment file name.
#[must_use]
pub fn segment_seq_of(name: &str) -> Option<u64> {
    parse_seq(name, "seg-", ".corra")
}

/// The number embedded in *any* table file name (published manifest,
/// staged temp, or segment) — used to compute never-reused next numbers.
#[must_use]
pub fn any_seq_of(name: &str) -> Option<(SeqKind, u64)> {
    if let Some(seq) = parse_seq(name, "manifest-", ".man") {
        return Some((SeqKind::Manifest, seq));
    }
    if let Some(seq) = parse_seq(name, "manifest-", ".tmp") {
        return Some((SeqKind::Manifest, seq));
    }
    if let Some(seq) = parse_seq(name, "seg-", ".corra") {
        return Some((SeqKind::Segment, seq));
    }
    None
}

/// Which counter a file name draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeqKind {
    /// The manifest chain counter.
    Manifest,
    /// The segment allocation counter.
    Segment,
}

fn parse_seq(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    let middle = name.strip_prefix(prefix)?.strip_suffix(suffix)?;
    if middle.is_empty() || !middle.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    middle.parse().ok()
}

/// What a recovery scan of a table directory found.
#[derive(Debug)]
pub struct DirScan {
    /// Decode-valid manifests whose listed segments are all present with
    /// the recorded file length, **newest first**. The caller still has
    /// to open the segments (footer + checksum validation) and fall back
    /// down this list on failure.
    pub candidates: Vec<Manifest>,
    /// The next manifest number that has never appeared in the directory
    /// (counting torn temp files — numbers are never reused).
    pub next_manifest_seq: u64,
    /// The next segment number that has never appeared in the directory.
    pub next_segment_seq: u64,
}

/// Scans a table directory for recovery: every manifest that decodes
/// cleanly and whose segment files are present at their recorded
/// lengths, newest first, plus the never-reused next numbers.
///
/// Invalid manifests (torn temp files, flipped bytes, missing segments)
/// are *skipped*, not fatal — the caller falls back to the next-newest
/// candidate. Only I/O failures on the directory itself error.
///
/// # Errors
///
/// Underlying I/O failures listing the directory or reading files.
pub fn scan_dir(vfs: &dyn Vfs) -> Result<DirScan> {
    let names = vfs.list()?;
    let mut next_manifest_seq = 1;
    let mut next_segment_seq = 1;
    let mut manifest_seqs = Vec::new();
    for name in &names {
        match any_seq_of(name) {
            Some((SeqKind::Manifest, seq)) => {
                next_manifest_seq = next_manifest_seq.max(seq + 1);
                if manifest_seq_of(name).is_some() {
                    manifest_seqs.push(seq);
                }
            }
            Some((SeqKind::Segment, seq)) => {
                next_segment_seq = next_segment_seq.max(seq + 1);
            }
            None => {}
        }
    }
    manifest_seqs.sort_unstable_by(|a, b| b.cmp(a));
    let mut candidates = Vec::new();
    for seq in manifest_seqs {
        let name = manifest_file_name(seq);
        let Ok(bytes) = read_file(vfs, &name) else {
            continue;
        };
        let Ok(manifest) = Manifest::decode(&bytes) else {
            continue;
        };
        if manifest.seq != seq {
            continue; // renamed or misnumbered record: not trustworthy
        }
        let all_present = manifest.segments.iter().all(|seg| {
            names.binary_search(&seg.name).is_ok()
                && vfs
                    .open(&seg.name)
                    .and_then(|f| f.len())
                    .map(|len| len == seg.file_len)
                    .unwrap_or(false)
        });
        if all_present {
            candidates.push(manifest);
        }
    }
    Ok(DirScan {
        candidates,
        next_manifest_seq,
        next_segment_seq,
    })
}

/// Deletes every table file not needed by the `keep` manifests: older
/// published manifests, orphaned temp files, and segments no kept
/// manifest references. Call only after the newest kept manifest is
/// durable.
///
/// # Errors
///
/// Underlying I/O failures (the directory is still consistent — nothing
/// live is ever in the delete set).
pub fn gc(vfs: &dyn Vfs, keep: &[&Manifest]) -> Result<u64> {
    let names = vfs.list()?;
    let kept_manifests: std::collections::HashSet<String> =
        keep.iter().map(|m| m.file_name()).collect();
    let live_segments: std::collections::HashSet<&str> = keep
        .iter()
        .flat_map(|m| m.segments.iter().map(|s| s.name.as_str()))
        .collect();
    let mut removed = 0;
    for name in &names {
        let stale = match any_seq_of(name) {
            Some((SeqKind::Manifest, _)) => {
                !kept_manifests.contains(name) // covers torn .tmp files too
            }
            Some((SeqKind::Segment, _)) => !live_segments.contains(name.as_str()),
            None => false,
        };
        if stale {
            vfs.remove(name)?;
            removed += 1;
        }
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::SimVfs;

    fn sample() -> Manifest {
        Manifest {
            seq: 12,
            segments: vec![
                SegmentEntry {
                    seq: 3,
                    name: segment_file_name(3),
                    rows: 1024,
                    file_len: 9001,
                },
                SegmentEntry {
                    seq: 7,
                    name: segment_file_name(7),
                    rows: 16,
                    file_len: 512,
                },
            ],
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let m = sample();
        assert_eq!(Manifest::decode(&m.encode()).unwrap(), m);
        let empty = Manifest::empty(1);
        assert_eq!(Manifest::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn every_bit_flip_and_truncation_fails_closed() {
        let bytes = sample().encode();
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut flipped = bytes.clone();
                flipped[i] ^= 1 << bit;
                assert!(
                    Manifest::decode(&flipped).is_err(),
                    "flip at byte {i} bit {bit} decoded"
                );
            }
        }
        for cut in 0..bytes.len() {
            assert!(
                Manifest::decode(&bytes[..cut]).is_err(),
                "truncation to {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn file_name_numbering_roundtrips() {
        assert_eq!(manifest_file_name(7), "manifest-000007.man");
        assert_eq!(manifest_seq_of("manifest-000007.man"), Some(7));
        assert_eq!(manifest_seq_of("manifest-000007.tmp"), None);
        assert_eq!(segment_seq_of("seg-001234.corra"), Some(1234));
        assert_eq!(
            any_seq_of("manifest-000009.tmp"),
            Some((SeqKind::Manifest, 9))
        );
        assert_eq!(any_seq_of("seg-000002.corra"), Some((SeqKind::Segment, 2)));
        assert_eq!(any_seq_of("manifest-xx.man"), None);
        assert_eq!(any_seq_of("unrelated"), None);
    }

    #[test]
    fn scan_dir_prefers_newest_and_skips_invalid() {
        let vfs = SimVfs::new(0);
        // Segment files for both manifests.
        for (seq, len) in [(1u64, 8usize), (2, 8)] {
            let f = vfs.create(&segment_file_name(seq)).unwrap();
            crate::io::write_full_at(&f, 0, &[7u8; 8]).unwrap();
            f.fsync().unwrap();
            let _ = len;
        }
        let m1 = Manifest {
            seq: 1,
            segments: vec![SegmentEntry {
                seq: 1,
                name: segment_file_name(1),
                rows: 4,
                file_len: 8,
            }],
        };
        let m2 = Manifest {
            seq: 2,
            segments: vec![
                m1.segments[0].clone(),
                SegmentEntry {
                    seq: 2,
                    name: segment_file_name(2),
                    rows: 4,
                    file_len: 8,
                },
            ],
        };
        m1.publish(&vfs).unwrap();
        m2.publish(&vfs).unwrap();
        let scan = scan_dir(&vfs).unwrap();
        assert_eq!(scan.candidates.len(), 2);
        assert_eq!(scan.candidates[0], m2);
        assert_eq!(scan.candidates[1], m1);
        assert_eq!(scan.next_manifest_seq, 3);
        assert_eq!(scan.next_segment_seq, 3);

        // Corrupt the newest manifest on disk: recovery falls back to m1.
        let bytes = read_file(&vfs, &m2.file_name()).unwrap();
        let mut broken = bytes.clone();
        broken[10] ^= 0x40;
        let f = vfs.create(&m2.file_name()).unwrap();
        crate::io::write_full_at(&f, 0, &broken).unwrap();
        let scan = scan_dir(&vfs).unwrap();
        assert_eq!(scan.candidates.len(), 1);
        assert_eq!(scan.candidates[0], m1);
        // Numbers are still never reused.
        assert_eq!(scan.next_manifest_seq, 3);
    }

    #[test]
    fn scan_dir_rejects_manifests_with_missing_or_resized_segments() {
        let vfs = SimVfs::new(0);
        let f = vfs.create(&segment_file_name(1)).unwrap();
        crate::io::write_full_at(&f, 0, &[1u8; 16]).unwrap();
        let m = Manifest {
            seq: 1,
            segments: vec![SegmentEntry {
                seq: 1,
                name: segment_file_name(1),
                rows: 4,
                file_len: 32, // wrong: actual file is 16 bytes (torn tail)
            }],
        };
        m.publish(&vfs).unwrap();
        let scan = scan_dir(&vfs).unwrap();
        assert!(scan.candidates.is_empty(), "torn segment accepted");
    }

    #[test]
    fn gc_removes_only_dead_files() {
        let vfs = SimVfs::new(0);
        for seq in 1..=3u64 {
            let f = vfs.create(&segment_file_name(seq)).unwrap();
            crate::io::write_full_at(&f, 0, &[9u8; 8]).unwrap();
            f.fsync().unwrap();
        }
        let live = Manifest {
            seq: 2,
            segments: vec![SegmentEntry {
                seq: 2,
                name: segment_file_name(2),
                rows: 1,
                file_len: 8,
            }],
        };
        Manifest::empty(1).publish(&vfs).unwrap();
        live.publish(&vfs).unwrap();
        // An orphaned temp from a torn publish.
        let f = vfs.create(&manifest_tmp_name(3)).unwrap();
        crate::io::write_full_at(&f, 0, b"torn").unwrap();
        vfs.sync_dir().unwrap();

        let removed = gc(&vfs, &[&live]).unwrap();
        assert_eq!(removed, 4); // seg 1, seg 3, manifest 1, tmp 3
        assert_eq!(
            vfs.list().unwrap(),
            vec![live.file_name(), segment_file_name(2)]
        );
    }
}
