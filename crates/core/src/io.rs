//! Pluggable read backends for the table store, plus deterministic fault
//! injection.
//!
//! [`TableReader`](crate::store::TableReader) performs all data access
//! through the [`IoBackend`] trait — positioned reads with **pread
//! semantics**: a call may return *fewer* bytes than requested (as plain
//! `read(2)` legitimately does), and [`read_full_at`] is the one loop that
//! turns short reads into whole buffers or errors. Backends:
//!
//! * [`MemBackend`] — a byte buffer (tables built in memory, tests);
//! * [`FileBackend`] — `std::fs::File` behind a mutex (what
//!   [`TableReader::open`](crate::store::TableReader::open) uses); an
//!   `O_DIRECT`/`io_uring` backend can slot in later without touching any
//!   caller;
//! * [`FaultyBackend`] — a decorator that injects **short reads, transient
//!   errors, bit flips and a truncated tail** on a seeded, replayable
//!   schedule. This is the hostile half of the `corra-sim` torture
//!   harness: short reads must heal transparently (the [`read_full_at`]
//!   loop), and every other fault must surface as `Err` — never a panic,
//!   never silently wrong data (the store's checksums catch flipped
//!   payload bytes).
//!
//! The module also provides [`checksum64`], the FNV-1a function behind the
//! store's footer/segment/payload integrity checks.

use std::io::{Read, Seek, SeekFrom};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use corra_columnar::error::{Error, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A positioned-read data source with pread semantics.
///
/// `read_at` may return fewer bytes than `buf.len()` (short read); callers
/// that need the whole range use [`read_full_at`]. Implementations must be
/// thread-safe: the parallel scan drivers issue reads from many workers.
// `len` is a fallible file size in bytes, not a container length — an
// `is_empty` twin would have no caller.
#[allow(clippy::len_without_is_empty)]
pub trait IoBackend: Send + Sync {
    /// Reads up to `buf.len()` bytes starting at `offset`, returning how
    /// many were read. `Ok(0)` means end-of-source (offset at or past
    /// [`len`](Self::len)).
    ///
    /// # Errors
    ///
    /// Underlying I/O failures.
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<usize>;

    /// Total size of the source in bytes.
    ///
    /// # Errors
    ///
    /// Underlying I/O failures.
    fn len(&self) -> Result<u64>;
}

/// Shared backends delegate: lets a caller hand a reader one handle and
/// keep another (e.g. to read [`FaultyBackend::stats`] after the reader
/// has consumed its `Box<dyn IoBackend>`).
impl<T: IoBackend + ?Sized> IoBackend for std::sync::Arc<T> {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<usize> {
        (**self).read_at(offset, buf)
    }

    fn len(&self) -> Result<u64> {
        (**self).len()
    }
}

/// Fills `buf` from `backend` starting at `offset`, looping over short
/// reads. A plain `read` may legitimately return partial data — this is
/// the single place that loop lives, so every store read is short-read
/// safe.
///
/// # Errors
///
/// Underlying I/O failures; premature end-of-source (the backend returned
/// `0` before the buffer filled); a misbehaving backend that over-reports.
pub fn read_full_at(backend: &dyn IoBackend, offset: u64, buf: &mut [u8]) -> Result<()> {
    let mut filled = 0usize;
    while filled < buf.len() {
        let n = backend.read_at(offset + filled as u64, &mut buf[filled..])?;
        if n == 0 {
            return Err(Error::corrupt(format!(
                "unexpected end of table source: wanted {} bytes at offset {offset}, got {filled}",
                buf.len()
            )));
        }
        if n > buf.len() - filled {
            return Err(Error::invalid(format!(
                "backend over-reported a read: {n} bytes into a {}-byte buffer",
                buf.len() - filled
            )));
        }
        filled += n;
    }
    Ok(())
}

/// An in-memory byte-buffer backend.
#[derive(Debug, Clone)]
pub struct MemBackend {
    bytes: Vec<u8>,
}

impl MemBackend {
    /// Wraps a byte buffer.
    pub fn new(bytes: Vec<u8>) -> Self {
        Self { bytes }
    }
}

impl IoBackend for MemBackend {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<usize> {
        let Ok(start) = usize::try_from(offset) else {
            return Ok(0);
        };
        if start >= self.bytes.len() {
            return Ok(0);
        }
        let n = buf.len().min(self.bytes.len() - start);
        buf[..n].copy_from_slice(&self.bytes[start..start + n]);
        Ok(n)
    }

    fn len(&self) -> Result<u64> {
        Ok(self.bytes.len() as u64)
    }
}

/// A `std::fs::File` backend (seek + read behind a mutex).
#[derive(Debug)]
pub struct FileBackend {
    file: Mutex<std::fs::File>,
}

impl FileBackend {
    /// Opens `path` read-only.
    ///
    /// # Errors
    ///
    /// Filesystem errors.
    pub fn open(path: &std::path::Path) -> Result<Self> {
        let file = std::fs::File::open(path)
            .map_err(|e| Error::invalid(format!("opening table file: {e}")))?;
        Ok(Self {
            file: Mutex::new(file),
        })
    }
}

impl IoBackend for FileBackend {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<usize> {
        let mut file = self.file.lock().expect("table file lock poisoned");
        file.seek(SeekFrom::Start(offset))
            .map_err(|e| Error::invalid(format!("seeking table file: {e}")))?;
        // A single read call: may be short, may be zero at EOF. The
        // read_full_at loop above this backend handles both.
        file.read(buf)
            .map_err(|e| Error::invalid(format!("reading table file: {e}")))
    }

    fn len(&self) -> Result<u64> {
        let mut file = self.file.lock().expect("table file lock poisoned");
        file.seek(SeekFrom::End(0))
            .map_err(|e| Error::invalid(format!("sizing table file: {e}")))
    }
}

/// FNV-1a 64-bit checksum.
///
/// Bijective per input byte (xor, then multiply by an odd prime), so any
/// single-bit or single-byte corruption is guaranteed to change the value —
/// exactly the fault class the torture harness injects. Not
/// collision-resistant against adversarial *pairs* of inputs; the store
/// uses it for bit-rot and torn-write detection, not authentication.
#[must_use]
pub fn checksum64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// Which faults a [`FaultyBackend`] injects, with what probability, on a
/// seeded schedule.
///
/// All probabilities are per `read_at` call. The default plan injects
/// nothing; build one with the `with_*` methods.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// RNG seed driving the fault schedule (replayable).
    pub seed: u64,
    /// Probability a read is clipped to a random shorter length (≥ 1 byte).
    pub p_short_read: f64,
    /// Probability a read fails with an injected transient error.
    pub p_transient: f64,
    /// Probability one random bit of the returned bytes is flipped.
    pub p_bit_flip: f64,
    /// Pretend the source ends at this offset (torn tail): reads at or past
    /// it return 0 bytes.
    pub truncate_at: Option<u64>,
}

impl FaultPlan {
    /// A plan that injects nothing (decorator becomes a pass-through).
    #[must_use]
    pub fn none(seed: u64) -> Self {
        Self {
            seed,
            p_short_read: 0.0,
            p_transient: 0.0,
            p_bit_flip: 0.0,
            truncate_at: None,
        }
    }

    /// Sets the short-read probability.
    #[must_use]
    pub fn with_short_reads(mut self, p: f64) -> Self {
        self.p_short_read = p;
        self
    }

    /// Sets the transient-error probability.
    #[must_use]
    pub fn with_transient_errors(mut self, p: f64) -> Self {
        self.p_transient = p;
        self
    }

    /// Sets the bit-flip probability.
    #[must_use]
    pub fn with_bit_flips(mut self, p: f64) -> Self {
        self.p_bit_flip = p;
        self
    }

    /// Truncates the source at `offset` (a torn tail).
    #[must_use]
    pub fn with_truncation(mut self, offset: u64) -> Self {
        self.truncate_at = Some(offset);
        self
    }

    /// Whether every injectable fault in this plan is *benign*: short
    /// reads are healed by the [`read_full_at`] loop, so a plan that only
    /// injects them must never change any result or produce any error.
    #[must_use]
    pub fn is_benign(&self) -> bool {
        self.p_transient == 0.0 && self.p_bit_flip == 0.0 && self.truncate_at.is_none()
    }
}

/// Counters of faults a [`FaultyBackend`] actually injected.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FaultStats {
    /// Reads clipped short.
    pub short_reads: u64,
    /// Reads failed with an injected error.
    pub transient_errors: u64,
    /// Bits flipped in returned buffers.
    pub bit_flips: u64,
    /// Reads clipped or zeroed by the truncated tail.
    pub truncated_reads: u64,
}

impl FaultStats {
    /// Total faults injected.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.short_reads + self.transient_errors + self.bit_flips + self.truncated_reads
    }
}

/// Decorator injecting storage faults into an inner [`IoBackend`] on a
/// deterministic, seeded schedule.
///
/// The same `(inner bytes, FaultPlan)` pair injects the same faults at the
/// same read positions on every run — which is what makes a failing
/// torture-harness seed replayable. The decorator never mutates the inner
/// backend; flips land in the caller's buffer only.
pub struct FaultyBackend<B: IoBackend> {
    inner: B,
    plan: FaultPlan,
    rng: Mutex<StdRng>,
    short_reads: AtomicU64,
    transient_errors: AtomicU64,
    bit_flips: AtomicU64,
    truncated_reads: AtomicU64,
}

impl<B: IoBackend> FaultyBackend<B> {
    /// Wraps `inner` with the given fault plan.
    pub fn new(inner: B, plan: FaultPlan) -> Self {
        let rng = Mutex::new(StdRng::seed_from_u64(plan.seed));
        Self {
            inner,
            plan,
            rng,
            short_reads: AtomicU64::new(0),
            transient_errors: AtomicU64::new(0),
            bit_flips: AtomicU64::new(0),
            truncated_reads: AtomicU64::new(0),
        }
    }

    /// Faults injected so far.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            short_reads: self.short_reads.load(Ordering::Relaxed),
            transient_errors: self.transient_errors.load(Ordering::Relaxed),
            bit_flips: self.bit_flips.load(Ordering::Relaxed),
            truncated_reads: self.truncated_reads.load(Ordering::Relaxed),
        }
    }

    /// The fault plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

impl<B: IoBackend> IoBackend for FaultyBackend<B> {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<usize> {
        // Draw the whole schedule for this call under one lock so the
        // sequence of decisions is a pure function of (seed, call order).
        let (transient, short_to, flip) = {
            let mut rng = self.rng.lock().expect("fault rng poisoned");
            let transient = self.plan.p_transient > 0.0 && rng.gen_bool(self.plan.p_transient);
            let short_to = (self.plan.p_short_read > 0.0
                && buf.len() > 1
                && rng.gen_bool(self.plan.p_short_read))
            .then(|| rng.gen_range(1..buf.len()));
            let flip = (self.plan.p_bit_flip > 0.0 && rng.gen_bool(self.plan.p_bit_flip))
                .then(|| rng.gen::<u64>());
            (transient, short_to, flip)
        };
        if transient {
            self.transient_errors.fetch_add(1, Ordering::Relaxed);
            return Err(Error::invalid(format!(
                "injected transient I/O error at offset {offset}"
            )));
        }
        let mut window = buf.len();
        if let Some(end) = self.plan.truncate_at {
            if offset >= end {
                self.truncated_reads.fetch_add(1, Ordering::Relaxed);
                return Ok(0);
            }
            let clipped = usize::try_from(end - offset)
                .unwrap_or(usize::MAX)
                .min(window);
            if clipped < window {
                self.truncated_reads.fetch_add(1, Ordering::Relaxed);
                window = clipped;
            }
        }
        if let Some(short) = short_to {
            if short < window {
                self.short_reads.fetch_add(1, Ordering::Relaxed);
                window = short;
            }
        }
        let n = self.inner.read_at(offset, &mut buf[..window])?;
        if n > 0 {
            if let Some(r) = flip {
                let byte = (r as usize >> 3) % n;
                let bit = (r & 7) as u8;
                buf[byte] ^= 1 << bit;
                self.bit_flips.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(n)
    }

    fn len(&self) -> Result<u64> {
        let inner = self.inner.len()?;
        Ok(match self.plan.truncate_at {
            Some(end) => inner.min(end),
            None => inner,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_backend_pread_semantics() {
        let b = MemBackend::new((0u8..100).collect());
        let mut buf = [0u8; 10];
        assert_eq!(b.read_at(0, &mut buf).unwrap(), 10);
        assert_eq!(&buf[..3], &[0, 1, 2]);
        // Clipped at the end, zero past it.
        assert_eq!(b.read_at(95, &mut buf).unwrap(), 5);
        assert_eq!(b.read_at(100, &mut buf).unwrap(), 0);
        assert_eq!(b.read_at(u64::MAX, &mut buf).unwrap(), 0);
        assert_eq!(b.len().unwrap(), 100);
    }

    #[test]
    fn read_full_at_loops_over_short_reads() {
        let inner = MemBackend::new((0u8..=255).collect());
        let faulty = FaultyBackend::new(inner, FaultPlan::none(7).with_short_reads(0.9));
        let mut buf = vec![0u8; 256];
        read_full_at(&faulty, 0, &mut buf).unwrap();
        assert_eq!(buf, (0u8..=255).collect::<Vec<_>>());
        assert!(faulty.stats().short_reads > 0, "no short read injected");
    }

    #[test]
    fn read_full_at_errors_on_premature_end() {
        let b = MemBackend::new(vec![1, 2, 3]);
        let mut buf = [0u8; 8];
        let err = read_full_at(&b, 0, &mut buf).unwrap_err();
        assert!(err.to_string().contains("unexpected end"), "{err}");
    }

    #[test]
    fn faulty_backend_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let inner = MemBackend::new(vec![0xAA; 4096]);
            let plan = FaultPlan::none(seed)
                .with_short_reads(0.3)
                .with_bit_flips(0.2)
                .with_transient_errors(0.1);
            let faulty = FaultyBackend::new(inner, plan);
            let mut log = Vec::new();
            for i in 0..50 {
                let mut buf = vec![0u8; 64];
                match faulty.read_at(i * 64, &mut buf) {
                    Ok(n) => log.push((n as u64, checksum64(&buf))),
                    Err(_) => log.push((u64::MAX, 0)),
                }
            }
            (log, faulty.stats())
        };
        let (log_a, stats_a) = run(42);
        let (log_b, stats_b) = run(42);
        let (log_c, _) = run(43);
        assert_eq!(log_a, log_b);
        assert_eq!(stats_a, stats_b);
        assert_ne!(log_a, log_c, "different seeds produced identical faults");
        assert!(stats_a.total() > 0);
    }

    #[test]
    fn truncation_clips_length_and_reads() {
        let inner = MemBackend::new(vec![7u8; 100]);
        let faulty = FaultyBackend::new(inner, FaultPlan::none(1).with_truncation(40));
        assert_eq!(faulty.len().unwrap(), 40);
        let mut buf = [0u8; 64];
        assert_eq!(faulty.read_at(0, &mut buf).unwrap(), 40);
        assert_eq!(faulty.read_at(40, &mut buf).unwrap(), 0);
        assert!(faulty.stats().truncated_reads >= 2);
    }

    #[test]
    fn checksum_catches_every_single_bit_flip() {
        let bytes: Vec<u8> = (0..64).map(|i| (i * 37 % 256) as u8).collect();
        let clean = checksum64(&bytes);
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut flipped = bytes.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(checksum64(&flipped), clean, "byte {i} bit {bit}");
            }
        }
    }
}
