//! Pluggable read backends for the table store, plus deterministic fault
//! injection.
//!
//! [`TableReader`](crate::store::TableReader) performs all data access
//! through the [`IoBackend`] trait — positioned reads with **pread
//! semantics**: a call may return *fewer* bytes than requested (as plain
//! `read(2)` legitimately does), and [`read_full_at`] is the one loop that
//! turns short reads into whole buffers or errors. Backends:
//!
//! * [`MemBackend`] — a byte buffer (tables built in memory, tests);
//! * [`FileBackend`] — `std::fs::File` behind a mutex (what
//!   [`TableReader::open`](crate::store::TableReader::open) uses); an
//!   `O_DIRECT`/`io_uring` backend can slot in later without touching any
//!   caller;
//! * [`FaultyBackend`] — a decorator that injects **short reads, transient
//!   errors, bit flips and a truncated tail** on a seeded, replayable
//!   schedule. This is the hostile half of the `corra-sim` torture
//!   harness: short reads must heal transparently (the [`read_full_at`]
//!   loop), and every other fault must surface as `Err` — never a panic,
//!   never silently wrong data (the store's checksums catch flipped
//!   payload bytes).
//!
//! The module also provides [`checksum64`], the FNV-1a function behind the
//! store's footer/segment/payload integrity checks.

use std::io::{Read, Seek, SeekFrom};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use corra_columnar::error::{Error, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A positioned-read data source with pread semantics, optionally
/// writable.
///
/// `read_at` may return fewer bytes than `buf.len()` (short read); callers
/// that need the whole range use [`read_full_at`]. Implementations must be
/// thread-safe: the parallel scan drivers issue reads from many workers.
///
/// The write half mirrors the read half with **pwrite semantics**:
/// [`write_at`](Self::write_at) may write fewer bytes than offered (as
/// `write(2)` legitimately does) and [`write_full_at`] is the one loop
/// that turns short writes into whole buffers or errors. Durability is
/// explicit: nothing written counts as *acknowledged* until
/// [`fsync`](Self::fsync) returns `Ok` — the ingest layer's crash
/// contract is built on exactly that line. Read-only backends keep the
/// default implementations, which error.
// `len` is a fallible file size in bytes, not a container length — an
// `is_empty` twin would have no caller.
#[allow(clippy::len_without_is_empty)]
pub trait IoBackend: Send + Sync {
    /// Reads up to `buf.len()` bytes starting at `offset`, returning how
    /// many were read. `Ok(0)` means end-of-source (offset at or past
    /// [`len`](Self::len)).
    ///
    /// # Errors
    ///
    /// Underlying I/O failures.
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<usize>;

    /// Total size of the source in bytes.
    ///
    /// # Errors
    ///
    /// Underlying I/O failures.
    fn len(&self) -> Result<u64>;

    /// Writes up to `buf.len()` bytes at `offset` (pwrite semantics — the
    /// write may be short), returning how many bytes were written. Writes
    /// land in the backend's *volatile* state until
    /// [`fsync`](Self::fsync) succeeds.
    ///
    /// # Errors
    ///
    /// Underlying I/O failures; read-only backends (the default).
    fn write_at(&self, _offset: u64, _buf: &[u8]) -> Result<usize> {
        Err(Error::invalid("backend is read-only"))
    }

    /// Forces every byte written so far to durable storage. Only after
    /// `Ok` may the caller acknowledge the data; a failed fsync means the
    /// writes may or may not survive a crash, and the caller must treat
    /// them as lost.
    ///
    /// # Errors
    ///
    /// Underlying I/O failures; read-only backends (the default).
    fn fsync(&self) -> Result<()> {
        Err(Error::invalid("backend is read-only"))
    }
}

/// Shared backends delegate: lets a caller hand a reader one handle and
/// keep another (e.g. to read [`FaultyBackend::stats`] after the reader
/// has consumed its `Box<dyn IoBackend>`).
impl<T: IoBackend + ?Sized> IoBackend for std::sync::Arc<T> {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<usize> {
        (**self).read_at(offset, buf)
    }

    fn len(&self) -> Result<u64> {
        (**self).len()
    }

    fn write_at(&self, offset: u64, buf: &[u8]) -> Result<usize> {
        (**self).write_at(offset, buf)
    }

    fn fsync(&self) -> Result<()> {
        (**self).fsync()
    }
}

/// Boxed backends delegate, so decorators can wrap a `Box<dyn IoBackend>`
/// (e.g. the handles a [`Vfs`](crate::vfs::Vfs) hands out).
impl<T: IoBackend + ?Sized> IoBackend for Box<T> {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<usize> {
        (**self).read_at(offset, buf)
    }

    fn len(&self) -> Result<u64> {
        (**self).len()
    }

    fn write_at(&self, offset: u64, buf: &[u8]) -> Result<usize> {
        (**self).write_at(offset, buf)
    }

    fn fsync(&self) -> Result<()> {
        (**self).fsync()
    }
}

/// Fills `buf` from `backend` starting at `offset`, looping over short
/// reads. A plain `read` may legitimately return partial data — this is
/// the single place that loop lives, so every store read is short-read
/// safe.
///
/// # Errors
///
/// Underlying I/O failures; premature end-of-source (the backend returned
/// `0` before the buffer filled); a misbehaving backend that over-reports.
pub fn read_full_at(backend: &dyn IoBackend, offset: u64, buf: &mut [u8]) -> Result<()> {
    let mut filled = 0usize;
    while filled < buf.len() {
        let n = backend.read_at(offset + filled as u64, &mut buf[filled..])?;
        if n == 0 {
            return Err(Error::corrupt(format!(
                "unexpected end of table source: wanted {} bytes at offset {offset}, got {filled}",
                buf.len()
            )));
        }
        if n > buf.len() - filled {
            return Err(Error::invalid(format!(
                "backend over-reported a read: {n} bytes into a {}-byte buffer",
                buf.len() - filled
            )));
        }
        filled += n;
    }
    Ok(())
}

/// Writes all of `buf` to `backend` starting at `offset`, looping over
/// short writes. A plain `write` may legitimately accept partial data —
/// this is the single place that loop lives, so every ingest write is
/// short-write safe.
///
/// # Errors
///
/// Underlying I/O failures; a backend that reports zero progress or
/// over-reports a write.
pub fn write_full_at(backend: &dyn IoBackend, offset: u64, buf: &[u8]) -> Result<()> {
    let mut written = 0usize;
    while written < buf.len() {
        let n = backend.write_at(offset + written as u64, &buf[written..])?;
        if n == 0 {
            return Err(Error::invalid(format!(
                "backend made no progress writing {} bytes at offset {offset}",
                buf.len()
            )));
        }
        if n > buf.len() - written {
            return Err(Error::invalid(format!(
                "backend over-reported a write: {n} bytes from a {}-byte buffer",
                buf.len() - written
            )));
        }
        written += n;
    }
    Ok(())
}

/// An in-memory byte-buffer backend.
#[derive(Debug, Clone)]
pub struct MemBackend {
    bytes: Vec<u8>,
}

impl MemBackend {
    /// Wraps a byte buffer.
    pub fn new(bytes: Vec<u8>) -> Self {
        Self { bytes }
    }
}

impl IoBackend for MemBackend {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<usize> {
        let Ok(start) = usize::try_from(offset) else {
            return Ok(0);
        };
        if start >= self.bytes.len() {
            return Ok(0);
        }
        let n = buf.len().min(self.bytes.len() - start);
        buf[..n].copy_from_slice(&self.bytes[start..start + n]);
        Ok(n)
    }

    fn len(&self) -> Result<u64> {
        Ok(self.bytes.len() as u64)
    }
}

/// A `std::fs::File` backend (seek + read behind a mutex).
#[derive(Debug)]
pub struct FileBackend {
    file: Mutex<std::fs::File>,
}

impl FileBackend {
    /// Opens `path` read-only.
    ///
    /// # Errors
    ///
    /// Filesystem errors.
    pub fn open(path: &std::path::Path) -> Result<Self> {
        let file = std::fs::File::open(path)
            .map_err(|e| Error::invalid(format!("opening table file: {e}")))?;
        Ok(Self {
            file: Mutex::new(file),
        })
    }

    /// Creates (or truncates) `path` read-write, for the ingest write
    /// path.
    ///
    /// # Errors
    ///
    /// Filesystem errors.
    pub fn create(path: &std::path::Path) -> Result<Self> {
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| Error::invalid(format!("creating table file: {e}")))?;
        Ok(Self {
            file: Mutex::new(file),
        })
    }
}

impl IoBackend for FileBackend {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<usize> {
        let mut file = self.file.lock().expect("table file lock poisoned");
        file.seek(SeekFrom::Start(offset))
            .map_err(|e| Error::invalid(format!("seeking table file: {e}")))?;
        // A single read call: may be short, may be zero at EOF. The
        // read_full_at loop above this backend handles both.
        file.read(buf)
            .map_err(|e| Error::invalid(format!("reading table file: {e}")))
    }

    fn len(&self) -> Result<u64> {
        let mut file = self.file.lock().expect("table file lock poisoned");
        file.seek(SeekFrom::End(0))
            .map_err(|e| Error::invalid(format!("sizing table file: {e}")))
    }

    fn write_at(&self, offset: u64, buf: &[u8]) -> Result<usize> {
        let mut file = self.file.lock().expect("table file lock poisoned");
        file.seek(SeekFrom::Start(offset))
            .map_err(|e| Error::invalid(format!("seeking table file: {e}")))?;
        std::io::Write::write(&mut *file, buf)
            .map_err(|e| Error::invalid(format!("writing table file: {e}")))
    }

    fn fsync(&self) -> Result<()> {
        let file = self.file.lock().expect("table file lock poisoned");
        file.sync_all()
            .map_err(|e| Error::invalid(format!("fsyncing table file: {e}")))
    }
}

/// FNV-1a 64-bit checksum.
///
/// Bijective per input byte (xor, then multiply by an odd prime), so any
/// single-bit or single-byte corruption is guaranteed to change the value —
/// exactly the fault class the torture harness injects. Not
/// collision-resistant against adversarial *pairs* of inputs; the store
/// uses it for bit-rot and torn-write detection, not authentication.
#[must_use]
pub fn checksum64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// Which faults a [`FaultyBackend`] injects, with what probability, on a
/// seeded schedule.
///
/// All probabilities are per `read_at` call. The default plan injects
/// nothing; build one with the `with_*` methods.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// RNG seed driving the fault schedule (replayable).
    pub seed: u64,
    /// Probability a read is clipped to a random shorter length (≥ 1 byte).
    pub p_short_read: f64,
    /// Probability a read fails with an injected transient error.
    pub p_transient: f64,
    /// Probability one random bit of the returned bytes is flipped.
    pub p_bit_flip: f64,
    /// Pretend the source ends at this offset (torn tail): reads at or past
    /// it return 0 bytes.
    pub truncate_at: Option<u64>,
    /// Probability a write is clipped to a random shorter length (≥ 1
    /// byte). Benign: healed by the [`write_full_at`] loop.
    pub p_short_write: f64,
    /// Probability a write fails with an injected error.
    pub p_write_error: f64,
    /// Probability an fsync fails with an injected error. The caller must
    /// treat the batch as unacknowledged — the test suite proves the
    /// ingest layer does.
    pub p_fsync_error: f64,
    /// Draw **read**-fault decisions from a positional hash of
    /// `(seed, offset, len)` instead of the shared call-order RNG.
    ///
    /// A call-order schedule is only replayable when every run issues the
    /// same reads in the same order — true for serial drivers, false for
    /// morsel-parallel scans, where thread interleaving permutes the
    /// draw order. Positionally, the verdict for a given `(offset, len)`
    /// read is a pure function of the plan seed, so the same read faults
    /// identically no matter which thread issues it or when. (Identical
    /// repeated reads fault identically too — that is the point.)
    /// Write-path faults keep the call-order schedule: the torture
    /// harness's write paths are serial.
    pub positional: bool,
}

impl FaultPlan {
    /// A plan that injects nothing (decorator becomes a pass-through).
    #[must_use]
    pub fn none(seed: u64) -> Self {
        Self {
            seed,
            p_short_read: 0.0,
            p_transient: 0.0,
            p_bit_flip: 0.0,
            truncate_at: None,
            p_short_write: 0.0,
            p_write_error: 0.0,
            p_fsync_error: 0.0,
            positional: false,
        }
    }

    /// Sets the short-read probability.
    #[must_use]
    pub fn with_short_reads(mut self, p: f64) -> Self {
        self.p_short_read = p;
        self
    }

    /// Sets the transient-error probability.
    #[must_use]
    pub fn with_transient_errors(mut self, p: f64) -> Self {
        self.p_transient = p;
        self
    }

    /// Sets the bit-flip probability.
    #[must_use]
    pub fn with_bit_flips(mut self, p: f64) -> Self {
        self.p_bit_flip = p;
        self
    }

    /// Truncates the source at `offset` (a torn tail).
    #[must_use]
    pub fn with_truncation(mut self, offset: u64) -> Self {
        self.truncate_at = Some(offset);
        self
    }

    /// Sets the short-write probability.
    #[must_use]
    pub fn with_short_writes(mut self, p: f64) -> Self {
        self.p_short_write = p;
        self
    }

    /// Sets the write-error probability.
    #[must_use]
    pub fn with_write_errors(mut self, p: f64) -> Self {
        self.p_write_error = p;
        self
    }

    /// Sets the fsync-error probability.
    #[must_use]
    pub fn with_fsync_errors(mut self, p: f64) -> Self {
        self.p_fsync_error = p;
        self
    }

    /// Switches read faults to the positional `(seed, offset, len)`
    /// schedule — see [`FaultPlan::positional`]. Required when the driver
    /// under fire reads from multiple threads (e.g. morsel-parallel
    /// scans), where a call-order schedule would not replay.
    #[must_use]
    pub fn with_positional_schedule(mut self) -> Self {
        self.positional = true;
        self
    }

    /// Whether every injectable fault in this plan is *benign*: short
    /// reads and short writes are healed by the [`read_full_at`] /
    /// [`write_full_at`] loops, so a plan that only injects them must
    /// never change any result or produce any error.
    #[must_use]
    pub fn is_benign(&self) -> bool {
        self.p_transient == 0.0
            && self.p_bit_flip == 0.0
            && self.truncate_at.is_none()
            && self.p_write_error == 0.0
            && self.p_fsync_error == 0.0
    }
}

/// Counters of faults a [`FaultyBackend`] actually injected.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FaultStats {
    /// Reads clipped short.
    pub short_reads: u64,
    /// Reads failed with an injected error.
    pub transient_errors: u64,
    /// Bits flipped in returned buffers.
    pub bit_flips: u64,
    /// Reads clipped or zeroed by the truncated tail.
    pub truncated_reads: u64,
    /// Writes clipped short.
    pub short_writes: u64,
    /// Writes failed with an injected error.
    pub write_errors: u64,
    /// Fsyncs failed with an injected error.
    pub failed_fsyncs: u64,
}

impl FaultStats {
    /// Total faults injected.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.short_reads
            + self.transient_errors
            + self.bit_flips
            + self.truncated_reads
            + self.short_writes
            + self.write_errors
            + self.failed_fsyncs
    }
}

/// The shared scheduling state behind one or more [`FaultyBackend`]s: the
/// plan, the seeded RNG, and the injected-fault counters.
///
/// One injector can be shared (via `Arc`) across every file a faulty
/// directory hands out, so the whole directory draws from **one**
/// deterministic schedule and reports **one** set of counters — which is
/// what makes a failing multi-file torture seed replayable.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: Mutex<StdRng>,
    short_reads: AtomicU64,
    transient_errors: AtomicU64,
    bit_flips: AtomicU64,
    truncated_reads: AtomicU64,
    short_writes: AtomicU64,
    write_errors: AtomicU64,
    failed_fsyncs: AtomicU64,
}

impl FaultInjector {
    /// A fresh injector for `plan`, seeded from `plan.seed`.
    #[must_use]
    pub fn new(plan: FaultPlan) -> Self {
        let rng = Mutex::new(StdRng::seed_from_u64(plan.seed));
        Self {
            plan,
            rng,
            short_reads: AtomicU64::new(0),
            transient_errors: AtomicU64::new(0),
            bit_flips: AtomicU64::new(0),
            truncated_reads: AtomicU64::new(0),
            short_writes: AtomicU64::new(0),
            write_errors: AtomicU64::new(0),
            failed_fsyncs: AtomicU64::new(0),
        }
    }

    /// The fault plan.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Faults injected so far, across every backend sharing this injector.
    #[must_use]
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            short_reads: self.short_reads.load(Ordering::Relaxed),
            transient_errors: self.transient_errors.load(Ordering::Relaxed),
            bit_flips: self.bit_flips.load(Ordering::Relaxed),
            truncated_reads: self.truncated_reads.load(Ordering::Relaxed),
            short_writes: self.short_writes.load(Ordering::Relaxed),
            write_errors: self.write_errors.load(Ordering::Relaxed),
            failed_fsyncs: self.failed_fsyncs.load(Ordering::Relaxed),
        }
    }
}

/// SplitMix64-style positional mixer: one well-scrambled word from
/// `(seed, offset, len, salt)`. Each salt yields an independent stream, so
/// one read can draw several decisions (fault? where? which bit?) without
/// correlation.
fn positional_mix(seed: u64, offset: u64, len: u64, salt: u64) -> u64 {
    let mut z = seed
        ^ offset.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ len.rotate_left(32)
        ^ salt.wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a mixed word onto `[0, 1)` with 53 uniform bits.
fn positional_unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Decorator injecting storage faults into an inner [`IoBackend`] on a
/// deterministic, seeded schedule.
///
/// The same `(inner bytes, FaultPlan)` pair injects the same faults at the
/// same read positions on every run — which is what makes a failing
/// torture-harness seed replayable. The decorator never mutates the inner
/// backend; flips land in the caller's buffer only. Write-path faults
/// (short writes, write errors, failed fsyncs) follow the same schedule;
/// an injected fsync error returns `Err` *without* syncing the inner
/// backend, so unsynced data genuinely stays volatile.
pub struct FaultyBackend<B: IoBackend> {
    inner: B,
    injector: std::sync::Arc<FaultInjector>,
}

impl<B: IoBackend> FaultyBackend<B> {
    /// Wraps `inner` with the given fault plan (a private injector).
    pub fn new(inner: B, plan: FaultPlan) -> Self {
        Self::with_injector(inner, std::sync::Arc::new(FaultInjector::new(plan)))
    }

    /// Wraps `inner` drawing faults from a shared `injector` — used by the
    /// faulty-directory decorator so every file in the directory shares
    /// one schedule and one set of counters.
    pub fn with_injector(inner: B, injector: std::sync::Arc<FaultInjector>) -> Self {
        Self { inner, injector }
    }

    /// The shared injector (clone it to share the schedule with more
    /// backends, or to keep reading counters after this one is consumed).
    pub fn injector(&self) -> &std::sync::Arc<FaultInjector> {
        &self.injector
    }

    /// Faults injected so far.
    pub fn stats(&self) -> FaultStats {
        self.injector.stats()
    }

    /// The fault plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.injector.plan
    }
}

impl<B: IoBackend> IoBackend for FaultyBackend<B> {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<usize> {
        let inj = &*self.injector;
        let plan = &inj.plan;
        // Draw the whole schedule for this call up front. Positional plans
        // hash (seed, offset, len) per decision — order- and
        // thread-independent; otherwise one lock makes the sequence of
        // decisions a pure function of (seed, call order).
        let (transient, short_to, flip) = if plan.positional {
            let len = buf.len() as u64;
            let draw = |salt: u64| positional_mix(plan.seed, offset, len, salt);
            let transient = plan.p_transient > 0.0 && positional_unit(draw(1)) < plan.p_transient;
            let short_to = (plan.p_short_read > 0.0
                && buf.len() > 1
                && positional_unit(draw(2)) < plan.p_short_read)
                .then(|| 1 + (draw(3) as usize % (buf.len() - 1)));
            let flip = (plan.p_bit_flip > 0.0 && positional_unit(draw(4)) < plan.p_bit_flip)
                .then(|| draw(5));
            (transient, short_to, flip)
        } else {
            let mut rng = inj.rng.lock().expect("fault rng poisoned");
            let transient = plan.p_transient > 0.0 && rng.gen_bool(plan.p_transient);
            let short_to =
                (plan.p_short_read > 0.0 && buf.len() > 1 && rng.gen_bool(plan.p_short_read))
                    .then(|| rng.gen_range(1..buf.len()));
            let flip =
                (plan.p_bit_flip > 0.0 && rng.gen_bool(plan.p_bit_flip)).then(|| rng.gen::<u64>());
            (transient, short_to, flip)
        };
        if transient {
            inj.transient_errors.fetch_add(1, Ordering::Relaxed);
            return Err(Error::invalid(format!(
                "injected transient I/O error at offset {offset}"
            )));
        }
        let mut window = buf.len();
        if let Some(end) = plan.truncate_at {
            if offset >= end {
                inj.truncated_reads.fetch_add(1, Ordering::Relaxed);
                return Ok(0);
            }
            let clipped = usize::try_from(end - offset)
                .unwrap_or(usize::MAX)
                .min(window);
            if clipped < window {
                inj.truncated_reads.fetch_add(1, Ordering::Relaxed);
                window = clipped;
            }
        }
        if let Some(short) = short_to {
            if short < window {
                inj.short_reads.fetch_add(1, Ordering::Relaxed);
                window = short;
            }
        }
        let n = self.inner.read_at(offset, &mut buf[..window])?;
        if n > 0 {
            if let Some(r) = flip {
                let byte = (r as usize >> 3) % n;
                let bit = (r & 7) as u8;
                buf[byte] ^= 1 << bit;
                inj.bit_flips.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(n)
    }

    fn len(&self) -> Result<u64> {
        let inner = self.inner.len()?;
        Ok(match self.injector.plan.truncate_at {
            Some(end) => inner.min(end),
            None => inner,
        })
    }

    fn write_at(&self, offset: u64, buf: &[u8]) -> Result<usize> {
        let inj = &*self.injector;
        let plan = &inj.plan;
        let (fail, short_to) = {
            let mut rng = inj.rng.lock().expect("fault rng poisoned");
            let fail = plan.p_write_error > 0.0 && rng.gen_bool(plan.p_write_error);
            let short_to =
                (plan.p_short_write > 0.0 && buf.len() > 1 && rng.gen_bool(plan.p_short_write))
                    .then(|| rng.gen_range(1..buf.len()));
            (fail, short_to)
        };
        if fail {
            inj.write_errors.fetch_add(1, Ordering::Relaxed);
            return Err(Error::invalid(format!(
                "injected write error at offset {offset}"
            )));
        }
        let window = match short_to {
            Some(short) if short < buf.len() => {
                inj.short_writes.fetch_add(1, Ordering::Relaxed);
                short
            }
            _ => buf.len(),
        };
        self.inner.write_at(offset, &buf[..window])
    }

    fn fsync(&self) -> Result<()> {
        let inj = &*self.injector;
        let fail = {
            let mut rng = inj.rng.lock().expect("fault rng poisoned");
            inj.plan.p_fsync_error > 0.0 && rng.gen_bool(inj.plan.p_fsync_error)
        };
        if fail {
            inj.failed_fsyncs.fetch_add(1, Ordering::Relaxed);
            // Deliberately skip the inner fsync: data written so far stays
            // volatile, exactly like a real fsync failure.
            return Err(Error::invalid("injected fsync failure"));
        }
        self.inner.fsync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_backend_pread_semantics() {
        let b = MemBackend::new((0u8..100).collect());
        let mut buf = [0u8; 10];
        assert_eq!(b.read_at(0, &mut buf).unwrap(), 10);
        assert_eq!(&buf[..3], &[0, 1, 2]);
        // Clipped at the end, zero past it.
        assert_eq!(b.read_at(95, &mut buf).unwrap(), 5);
        assert_eq!(b.read_at(100, &mut buf).unwrap(), 0);
        assert_eq!(b.read_at(u64::MAX, &mut buf).unwrap(), 0);
        assert_eq!(b.len().unwrap(), 100);
    }

    #[test]
    fn read_full_at_loops_over_short_reads() {
        let inner = MemBackend::new((0u8..=255).collect());
        let faulty = FaultyBackend::new(inner, FaultPlan::none(7).with_short_reads(0.9));
        let mut buf = vec![0u8; 256];
        read_full_at(&faulty, 0, &mut buf).unwrap();
        assert_eq!(buf, (0u8..=255).collect::<Vec<_>>());
        assert!(faulty.stats().short_reads > 0, "no short read injected");
    }

    #[test]
    fn read_full_at_errors_on_premature_end() {
        let b = MemBackend::new(vec![1, 2, 3]);
        let mut buf = [0u8; 8];
        let err = read_full_at(&b, 0, &mut buf).unwrap_err();
        assert!(err.to_string().contains("unexpected end"), "{err}");
    }

    #[test]
    fn faulty_backend_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let inner = MemBackend::new(vec![0xAA; 4096]);
            let plan = FaultPlan::none(seed)
                .with_short_reads(0.3)
                .with_bit_flips(0.2)
                .with_transient_errors(0.1);
            let faulty = FaultyBackend::new(inner, plan);
            let mut log = Vec::new();
            for i in 0..50 {
                let mut buf = vec![0u8; 64];
                match faulty.read_at(i * 64, &mut buf) {
                    Ok(n) => log.push((n as u64, checksum64(&buf))),
                    Err(_) => log.push((u64::MAX, 0)),
                }
            }
            (log, faulty.stats())
        };
        let (log_a, stats_a) = run(42);
        let (log_b, stats_b) = run(42);
        let (log_c, _) = run(43);
        assert_eq!(log_a, log_b);
        assert_eq!(stats_a, stats_b);
        assert_ne!(log_a, log_c, "different seeds produced identical faults");
        assert!(stats_a.total() > 0);
    }

    #[test]
    fn positional_schedule_is_call_order_independent() {
        let plan = || {
            FaultPlan::none(41)
                .with_short_reads(0.4)
                .with_bit_flips(0.4)
                .with_transient_errors(0.3)
                .with_positional_schedule()
        };
        let outcome = |b: &FaultyBackend<MemBackend>, off: u64| {
            let mut buf = [0u8; 32];
            match b.read_at(off, &mut buf) {
                Ok(n) => (n as u64, checksum64(&buf)),
                Err(_) => (u64::MAX, 0),
            }
        };
        let offsets: Vec<u64> = (0..40).map(|i| i * 32).collect();
        let fwd = FaultyBackend::new(MemBackend::new(vec![0x5C; 2048]), plan());
        let forward: Vec<_> = offsets.iter().map(|&o| outcome(&fwd, o)).collect();
        // Same offsets drawn in reverse order on a fresh backend: the
        // per-offset verdicts must not move — that is what lets parallel
        // drivers replay a hostile schedule.
        let rev = FaultyBackend::new(MemBackend::new(vec![0x5C; 2048]), plan());
        let mut reverse: Vec<_> = offsets.iter().rev().map(|&o| outcome(&rev, o)).collect();
        reverse.reverse();
        assert_eq!(forward, reverse);
        // Identical repeated reads fault identically.
        assert_eq!(outcome(&fwd, 64), outcome(&fwd, 64));
        // The schedule genuinely injects (deterministic, not flaky).
        assert!(fwd.stats().total() > 0, "positional plan injected nothing");
        // A different seed moves the verdicts.
        let other = FaultyBackend::new(
            MemBackend::new(vec![0x5C; 2048]),
            FaultPlan::none(42)
                .with_short_reads(0.4)
                .with_bit_flips(0.4)
                .with_transient_errors(0.3)
                .with_positional_schedule(),
        );
        let moved: Vec<_> = offsets.iter().map(|&o| outcome(&other, o)).collect();
        assert_ne!(
            forward, moved,
            "seed does not steer the positional schedule"
        );
    }

    #[test]
    fn truncation_clips_length_and_reads() {
        let inner = MemBackend::new(vec![7u8; 100]);
        let faulty = FaultyBackend::new(inner, FaultPlan::none(1).with_truncation(40));
        assert_eq!(faulty.len().unwrap(), 40);
        let mut buf = [0u8; 64];
        assert_eq!(faulty.read_at(0, &mut buf).unwrap(), 40);
        assert_eq!(faulty.read_at(40, &mut buf).unwrap(), 0);
        assert!(faulty.stats().truncated_reads >= 2);
    }

    /// A minimal writable in-memory backend for exercising the write path.
    struct SharedBuf {
        bytes: Mutex<Vec<u8>>,
        fsyncs: AtomicU64,
    }

    impl SharedBuf {
        fn new() -> Self {
            Self {
                bytes: Mutex::new(Vec::new()),
                fsyncs: AtomicU64::new(0),
            }
        }
    }

    impl IoBackend for SharedBuf {
        fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<usize> {
            let bytes = self.bytes.lock().unwrap();
            let start = usize::try_from(offset).unwrap_or(usize::MAX);
            if start >= bytes.len() {
                return Ok(0);
            }
            let n = buf.len().min(bytes.len() - start);
            buf[..n].copy_from_slice(&bytes[start..start + n]);
            Ok(n)
        }

        fn len(&self) -> Result<u64> {
            Ok(self.bytes.lock().unwrap().len() as u64)
        }

        fn write_at(&self, offset: u64, buf: &[u8]) -> Result<usize> {
            let mut bytes = self.bytes.lock().unwrap();
            let start = usize::try_from(offset).expect("offset fits");
            if bytes.len() < start + buf.len() {
                bytes.resize(start + buf.len(), 0);
            }
            bytes[start..start + buf.len()].copy_from_slice(buf);
            Ok(buf.len())
        }

        fn fsync(&self) -> Result<()> {
            self.fsyncs.fetch_add(1, Ordering::Relaxed);
            Ok(())
        }
    }

    #[test]
    fn read_only_backends_reject_writes() {
        let b = MemBackend::new(vec![1, 2, 3]);
        assert!(b.write_at(0, &[9]).is_err());
        assert!(b.fsync().is_err());
    }

    #[test]
    fn write_full_at_loops_over_short_writes() {
        let faulty =
            FaultyBackend::new(SharedBuf::new(), FaultPlan::none(3).with_short_writes(0.9));
        let payload: Vec<u8> = (0u8..=255).collect();
        write_full_at(&faulty, 0, &payload).unwrap();
        assert!(faulty.stats().short_writes > 0, "no short write injected");
        let mut back = vec![0u8; 256];
        read_full_at(&faulty, 0, &mut back).unwrap();
        assert_eq!(back, payload, "short writes must heal to the full buffer");
    }

    #[test]
    fn injected_fsync_failure_is_an_error_and_never_reaches_the_inner_sync() {
        let faulty =
            FaultyBackend::new(SharedBuf::new(), FaultPlan::none(5).with_fsync_errors(1.0));
        write_full_at(&faulty, 0, b"must not be acknowledged").unwrap();
        let err = faulty.fsync().unwrap_err();
        assert!(err.to_string().contains("injected fsync failure"), "{err}");
        assert_eq!(faulty.stats().failed_fsyncs, 1);
        // The inner backend was never synced: nothing may be acknowledged.
        assert_eq!(faulty.inner.fsyncs.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn injected_write_error_surfaces_and_is_counted() {
        let faulty =
            FaultyBackend::new(SharedBuf::new(), FaultPlan::none(9).with_write_errors(1.0));
        let err = faulty.write_at(0, &[1, 2, 3]).unwrap_err();
        assert!(err.to_string().contains("injected write error"), "{err}");
        assert_eq!(faulty.stats().write_errors, 1);
        assert_eq!(faulty.inner.len().unwrap(), 0, "no bytes may land");
    }

    #[test]
    fn shared_injector_pools_one_schedule_across_backends() {
        let injector = std::sync::Arc::new(FaultInjector::new(
            FaultPlan::none(11).with_short_writes(1.0),
        ));
        let a = FaultyBackend::with_injector(SharedBuf::new(), injector.clone());
        let b = FaultyBackend::with_injector(SharedBuf::new(), injector.clone());
        write_full_at(&a, 0, &[7u8; 64]).unwrap();
        write_full_at(&b, 0, &[9u8; 64]).unwrap();
        let stats = injector.stats();
        assert_eq!(stats, a.stats());
        assert_eq!(stats, b.stats());
        assert!(
            stats.short_writes >= 2,
            "both backends must draw from the shared schedule: {stats:?}"
        );
    }

    #[test]
    fn checksum_catches_every_single_bit_flip() {
        let bytes: Vec<u8> = (0..64).map(|i| (i * 37 % 256) as u8).collect();
        let clean = checksum64(&bytes);
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut flipped = bytes.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(checksum64(&flipped), clean, "byte {i} bit {bit}");
            }
        }
    }
}
