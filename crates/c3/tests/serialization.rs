//! Serialization coverage for the C3 comparator schemes: raw and framed
//! roundtrips for every variant, plus hostile-input sweeps (truncation and
//! bit flips must error, never panic).

use corra_c3::{C3Encoding, Dfor, HierFor, Numerical, OneToOne};
use corra_columnar::frame::Framed;

fn sample_pairs(n: usize) -> (Vec<i64>, Vec<i64>) {
    let reference: Vec<i64> = (0..n).map(|i| 50_000 + (i as i64 * 13 % 900)).collect();
    let target: Vec<i64> = reference
        .iter()
        .enumerate()
        .map(|(i, &r)| r * 2 + 17 + (i as i64 % 5))
        .collect();
    (target, reference)
}

fn all_variants(n: usize) -> Vec<C3Encoding> {
    let (target, reference) = sample_pairs(n);
    // Functional dependency with a couple of violations for 1-to-1.
    let fd_target: Vec<i64> = reference
        .iter()
        .enumerate()
        .map(|(i, &r)| if i == 7 || i == 91 { -1 } else { r % 37 })
        .collect();
    vec![
        C3Encoding::Dfor(Dfor::encode(&target, &reference).unwrap()),
        C3Encoding::Numerical(Numerical::encode(&target, &reference).unwrap()),
        C3Encoding::OneToOne(OneToOne::encode(&fd_target, &reference).unwrap()),
        C3Encoding::HierFor(HierFor::encode(&fd_target, &reference).unwrap()),
    ]
}

#[test]
fn roundtrip_every_scheme_raw_and_framed() {
    for enc in all_variants(500) {
        let mut raw = Vec::new();
        enc.write_to(&mut raw);
        let back = C3Encoding::read_from(&mut raw.as_slice()).unwrap();
        assert_eq!(back, enc, "{}", enc.scheme());

        let mut framed = Vec::new();
        enc.write_framed(&mut framed).unwrap();
        assert_eq!(framed.len(), raw.len() + 4, "{}", enc.scheme());
        let back = C3Encoding::read_framed(&mut framed.as_slice()).unwrap();
        assert_eq!(back, enc, "{}", enc.scheme());

        // Decoding through the deserialized encoding is identical.
        let (_, reference) = sample_pairs(500);
        let mut a = Vec::new();
        let mut b = Vec::new();
        enc.decode_into(&reference, &mut a).unwrap();
        back.decode_into(&reference, &mut b).unwrap();
        assert_eq!(a, b, "{}", enc.scheme());
    }
}

#[test]
fn truncation_never_panics() {
    for enc in all_variants(200) {
        let mut bytes = Vec::new();
        enc.write_framed(&mut bytes).unwrap();
        for cut in 0..bytes.len() {
            assert!(
                C3Encoding::read_framed(&mut &bytes[..cut]).is_err(),
                "{} cut {cut}",
                enc.scheme()
            );
        }
    }
}

#[test]
fn bit_flips_error_or_roundtrip_but_never_panic() {
    for enc in all_variants(64) {
        let mut bytes = Vec::new();
        enc.write_to(&mut bytes);
        for i in 0..bytes.len() {
            let mut hostile = bytes.clone();
            hostile[i] ^= 0x80;
            // Either a detected corruption or a structurally valid (if
            // semantically different) encoding — panics are the bug.
            let _ = C3Encoding::read_from(&mut hostile.as_slice());
        }
    }
}

#[test]
fn hostile_out_of_group_code_errors_not_panics() {
    // A payload whose structural invariants hold but whose packed code
    // indexes past its row's group must error at decode/filter time.
    let mut buf = Vec::new();
    buf.push(3u8); // HierFor tag
    buf.extend_from_slice(&1u64.to_le_bytes()); // n_keys
    buf.extend_from_slice(&0i64.to_le_bytes()); // key 0
    buf.extend_from_slice(&1u64.to_le_bytes()); // n_children
    buf.extend_from_slice(&7i64.to_le_bytes());
    buf.extend_from_slice(&0u32.to_le_bytes()); // offsets [0, 1]
    buf.extend_from_slice(&1u32.to_le_bytes());
    buf.push(2); // codes: bits = 2
    buf.extend_from_slice(&1u64.to_le_bytes()); // len = 1
    buf.extend_from_slice(&1u64.to_le_bytes()); // n_words = 1
    buf.extend_from_slice(&3u64.to_le_bytes()); // code 3 > group size 1
    let enc = C3Encoding::read_from(&mut buf.as_slice()).unwrap();
    let mut out = Vec::new();
    assert!(enc.decode_into(&[0], &mut out).is_err());
    if let C3Encoding::HierFor(h) = &enc {
        let range = corra_columnar::predicate::IntRange::new(0, 100);
        assert!(h.filter_into(&[0], &range, &mut out_u32()).is_err());
    } else {
        unreachable!("tag 3 is HierFor");
    }
}

fn out_u32() -> Vec<u32> {
    Vec::new()
}

#[test]
fn unknown_tag_and_sortedness_violations_rejected() {
    let bytes = [200u8, 0, 0, 0];
    assert!(C3Encoding::read_from(&mut &bytes[..]).is_err());

    // Hand-built 1-to-1 payload with unsorted keys.
    let mut buf = Vec::new();
    buf.push(2u8); // OneToOne tag
    buf.extend_from_slice(&4u64.to_le_bytes()); // len
    buf.extend_from_slice(&2u64.to_le_bytes()); // n_keys
    buf.extend_from_slice(&9i64.to_le_bytes()); // keys out of order
    buf.extend_from_slice(&3i64.to_le_bytes());
    buf.extend_from_slice(&1i64.to_le_bytes()); // mapped
    buf.extend_from_slice(&2i64.to_le_bytes());
    buf.extend_from_slice(&0u64.to_le_bytes()); // no exceptions
    assert!(C3Encoding::read_from(&mut buf.as_slice()).is_err());

    // Hand-built hier-for payload with inconsistent offsets.
    let mut buf = Vec::new();
    buf.push(3u8); // HierFor tag
    buf.extend_from_slice(&1u64.to_le_bytes()); // n_keys
    buf.extend_from_slice(&5i64.to_le_bytes()); // key
    buf.extend_from_slice(&2u64.to_le_bytes()); // n_children
    buf.extend_from_slice(&7i64.to_le_bytes());
    buf.extend_from_slice(&8i64.to_le_bytes());
    buf.extend_from_slice(&0u32.to_le_bytes()); // offsets: [0, 9] != 2 children
    buf.extend_from_slice(&9u32.to_le_bytes());
    buf.push(0); // codes: bits=0
    buf.extend_from_slice(&2u64.to_le_bytes()); // len
    buf.extend_from_slice(&0u64.to_le_bytes()); // n_words
    assert!(C3Encoding::read_from(&mut buf.as_slice()).is_err());
}
