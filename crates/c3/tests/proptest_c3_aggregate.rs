//! Differential oracle for the C3 aggregate kernels: every scheme's
//! `aggregate_into` must equal decode-then-fold, and the keyed schemes'
//! `aggregate_by_key` must equal a naive per-reference-key fold — for all
//! four schemes (DFOR, Numerical, 1-to-1, HierFor) and the chooser's pick,
//! across the paper-shaped correlation modes.

use corra_c3::{choose, C3Encoding, Dfor, HierFor, Numerical, OneToOne};
use corra_columnar::aggregate::IntAggState;
use proptest::prelude::*;

/// Builds a correlated (target, reference) pair shaped like the paper's
/// datasets from raw tuples (same generator as the filter parity suite).
fn make_pair(mode: u8, raw: &[(i64, i64)]) -> (Vec<i64>, Vec<i64>) {
    match mode % 4 {
        // Bounded diff (DFOR territory).
        0 => raw
            .iter()
            .map(|&(r, d)| {
                (
                    8_000 + r.rem_euclid(3_000) + d.rem_euclid(30),
                    8_000 + r.rem_euclid(3_000),
                )
            })
            .unzip(),
        // Affine trend (Numerical territory).
        1 => raw
            .iter()
            .map(|&(r, e)| {
                let r = r.rem_euclid(5_000);
                (3 * r + e.rem_euclid(8), r)
            })
            .unzip(),
        // Functional dependency (1-to-1 territory).
        2 => raw
            .iter()
            .map(|&(r, _)| {
                let r = r.rem_euclid(50);
                (r * 7 + 13, r)
            })
            .unzip(),
        // Hierarchy: few children per reference (HierFor territory).
        _ => raw
            .iter()
            .map(|&(r, c)| {
                let r = r.rem_euclid(40);
                (r * 100 + c.rem_euclid(4), r)
            })
            .unzip(),
    }
}

fn naive(values: &[i64]) -> IntAggState {
    let mut state = IntAggState::default();
    for &v in values {
        state.update(v);
    }
    state
}

fn naive_by_key(values: &[i64], reference: &[i64]) -> Vec<(i64, IntAggState)> {
    let mut keys: Vec<i64> = reference.to_vec();
    keys.sort_unstable();
    keys.dedup();
    let mut out: Vec<(i64, IntAggState)> = Vec::new();
    for &k in &keys {
        let mut state = IntAggState::default();
        for (&v, &r) in values.iter().zip(reference) {
            if r == k {
                state.update(v);
            }
        }
        if state.count > 0 {
            out.push((k, state));
        }
    }
    out
}

proptest! {
    /// aggregate == decode-then-fold across every C3 scheme, including the
    /// empty-column edge.
    #[test]
    fn c3_aggregates_match_decode_then_fold(
        mode in any::<u8>(),
        raw in prop::collection::vec((0i64..1_000_000, 0i64..1_000_000), 0..300),
    ) {
        let (target, reference) = make_pair(mode, &raw);
        let schemes: Vec<(&str, C3Encoding)> = vec![
            ("dfor", C3Encoding::Dfor(Dfor::encode(&target, &reference).unwrap())),
            ("numerical", C3Encoding::Numerical(Numerical::encode(&target, &reference).unwrap())),
            ("one-to-one", C3Encoding::OneToOne(OneToOne::encode(&target, &reference).unwrap())),
            ("hier-for", C3Encoding::HierFor(HierFor::encode(&target, &reference).unwrap())),
            ("chooser", choose(&target, &reference).unwrap()),
        ];
        for (label, enc) in &schemes {
            let mut decoded = Vec::new();
            enc.decode_into(&reference, &mut decoded).unwrap();
            prop_assert_eq!(&decoded, &target);
            let want = naive(&decoded);
            let mut got = IntAggState::default();
            enc.aggregate_into(&reference, &mut got).unwrap();
            prop_assert!(got == want, "{}: {:?} != {:?}", label, got, want);
        }
    }

    /// Grouped aggregation over the C3 reference (keyed schemes) equals the
    /// naive per-key fold, key for key, in sorted key order.
    #[test]
    fn c3_keyed_grouped_aggregates_match_naive(
        mode in any::<u8>(),
        raw in prop::collection::vec((0i64..1_000_000, 0i64..1_000_000), 0..250),
    ) {
        let (target, reference) = make_pair(mode, &raw);
        let want = naive_by_key(&target, &reference);
        let one = OneToOne::encode(&target, &reference).unwrap();
        let got = one.aggregate_by_key(&reference).unwrap();
        prop_assert!(got == want, "one-to-one: {:?} != {:?}", got, want);
        let hf = HierFor::encode(&target, &reference).unwrap();
        let got = hf.aggregate_by_key(&reference).unwrap();
        prop_assert!(got == want, "hier-for: {:?} != {:?}", got, want);
    }

    /// Misaligned reference lengths error on every scheme's aggregate
    /// kernel.
    #[test]
    fn c3_aggregates_reject_misaligned(
        mode in any::<u8>(),
        raw in prop::collection::vec((0i64..1_000, 0i64..1_000), 1..100),
    ) {
        let (target, reference) = make_pair(mode, &raw);
        let short = &reference[..reference.len() - 1];
        let mut state = IntAggState::default();
        prop_assert!(Dfor::encode(&target, &reference).unwrap()
            .aggregate_into(short, &mut state).is_err());
        prop_assert!(Numerical::encode(&target, &reference).unwrap()
            .aggregate_into(short, &mut state).is_err());
        prop_assert!(OneToOne::encode(&target, &reference).unwrap()
            .aggregate_into(short, &mut state).is_err());
        prop_assert!(HierFor::encode(&target, &reference).unwrap()
            .aggregate_into(short, &mut state).is_err());
        prop_assert!(HierFor::encode(&target, &reference).unwrap()
            .aggregate_by_key(short).is_err());
        prop_assert!(OneToOne::encode(&target, &reference).unwrap()
            .aggregate_by_key(short).is_err());
    }
}
