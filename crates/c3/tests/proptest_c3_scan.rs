//! Pushdown parity for the C3 comparator: every scheme's `filter_into`
//! kernel returns exactly the positions of decode-then-filter, for all four
//! schemes (DFOR, Numerical, 1-to-1, HierFor) and the chooser's pick,
//! including the empty-selection and all-rows edges.

use corra_c3::{choose, C3Encoding, Dfor, HierFor, Numerical, OneToOne};
use corra_columnar::predicate::IntRange;
use proptest::prelude::*;

/// Builds a correlated (target, reference) pair shaped like the paper's
/// datasets from raw tuples: bounded diffs, affine trends, functional
/// dependencies, hierarchies — selected by `mode`.
fn make_pair(mode: u8, raw: &[(i64, i64)]) -> (Vec<i64>, Vec<i64>) {
    match mode % 4 {
        // Bounded diff (DFOR territory).
        0 => raw
            .iter()
            .map(|&(r, d)| {
                (
                    8_000 + r.rem_euclid(3_000) + d.rem_euclid(30),
                    8_000 + r.rem_euclid(3_000),
                )
            })
            .unzip(),
        // Affine trend (Numerical territory).
        1 => raw
            .iter()
            .map(|&(r, e)| {
                let r = r.rem_euclid(5_000);
                (3 * r + e.rem_euclid(8), r)
            })
            .unzip(),
        // Functional dependency (1-to-1 territory).
        2 => raw
            .iter()
            .map(|&(r, _)| {
                let r = r.rem_euclid(50);
                (r * 7 + 13, r)
            })
            .unzip(),
        // Hierarchy: few children per reference (HierFor territory).
        _ => raw
            .iter()
            .map(|&(r, c)| {
                let r = r.rem_euclid(40);
                (r * 100 + c.rem_euclid(4), r)
            })
            .unzip(),
    }
}

fn naive(values: &[i64], range: &IntRange) -> Vec<u32> {
    values
        .iter()
        .enumerate()
        .filter(|&(_, &v)| range.matches(v))
        .map(|(i, _)| i as u32)
        .collect()
}

proptest! {
    /// filter == decode-then-filter across every C3 scheme, for arbitrary
    /// ranges plus the match-nothing / match-everything constants.
    #[test]
    fn c3_filters_match_decode_then_filter(
        mode in any::<u8>(),
        raw in prop::collection::vec((0i64..1_000_000, 0i64..1_000_000), 0..300),
        a in -2_000i64..600_000,
        b in -2_000i64..600_000,
        negate in any::<bool>(),
    ) {
        let (target, reference) = make_pair(mode, &raw);
        let (lo, hi) = (a.min(b), a.max(b));
        let ranges = [
            IntRange { lo, hi, negate },
            IntRange::empty(),
            IntRange::all(),
        ];
        let schemes: Vec<(&str, C3Encoding)> = vec![
            ("dfor", C3Encoding::Dfor(Dfor::encode(&target, &reference).unwrap())),
            ("numerical", C3Encoding::Numerical(Numerical::encode(&target, &reference).unwrap())),
            ("one-to-one", C3Encoding::OneToOne(OneToOne::encode(&target, &reference).unwrap())),
            ("hier-for", C3Encoding::HierFor(HierFor::encode(&target, &reference).unwrap())),
            ("chooser", choose(&target, &reference).unwrap()),
        ];
        for (label, enc) in &schemes {
            let mut decoded = Vec::new();
            enc.decode_into(&reference, &mut decoded).unwrap();
            prop_assert_eq!(&decoded, &target);
            for range in &ranges {
                let mut got = Vec::new();
                enc.filter_into(&reference, range, &mut got).unwrap();
                let want = naive(&decoded, range);
                prop_assert!(
                    got == want,
                    "{} {:?}: {:?} != {:?}", label, range, got, want
                );
            }
        }
    }

    /// Misaligned reference lengths error on every scheme's filter kernel.
    #[test]
    fn c3_filters_reject_misaligned(
        mode in any::<u8>(),
        raw in prop::collection::vec((0i64..1_000, 0i64..1_000), 1..100),
    ) {
        let (target, reference) = make_pair(mode, &raw);
        let mut out = Vec::new();
        let short = &reference[..reference.len() - 1];
        let range = IntRange::all();
        prop_assert!(Dfor::encode(&target, &reference).unwrap()
            .filter_into(short, &range, &mut out).is_err());
        prop_assert!(Numerical::encode(&target, &reference).unwrap()
            .filter_into(short, &range, &mut out).is_err());
        prop_assert!(OneToOne::encode(&target, &reference).unwrap()
            .filter_into(short, &range, &mut out).is_err());
        prop_assert!(HierFor::encode(&target, &reference).unwrap()
            .filter_into(short, &range, &mut out).is_err());
    }
}
