//! C3's **DFOR** encoding: diff against the reference, then plain FOR +
//! bit-packing on the diff column (no outlier region — C3's DFOR, as
//! described in the Corra paper's Independent Work section, compresses the
//! whole diff column via FOR).

use corra_columnar::aggregate::IntAggState;
use corra_columnar::bitpack::BitPackedVec;
use corra_columnar::error::{Error, Result};
use corra_columnar::predicate::IntRange;

/// A column DFOR-encoded w.r.t. a reference column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dfor {
    base: i64,
    diffs: BitPackedVec,
}

impl Dfor {
    /// Encodes `target` against `reference`.
    pub fn encode(target: &[i64], reference: &[i64]) -> Result<Self> {
        if target.len() != reference.len() {
            return Err(Error::LengthMismatch {
                left: target.len(),
                right: reference.len(),
            });
        }
        let diffs: Vec<i64> = target
            .iter()
            .zip(reference)
            .map(|(&t, &r)| t.wrapping_sub(r))
            .collect();
        let base = diffs.iter().copied().min().unwrap_or(0);
        let offsets: Vec<u64> = diffs
            .iter()
            .map(|&d| (d as i128 - base as i128) as u64)
            .collect();
        Ok(Self {
            base,
            diffs: BitPackedVec::pack_minimal(&offsets),
        })
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.diffs.len()
    }

    /// Whether the column is empty.
    pub fn is_empty(&self) -> bool {
        self.diffs.is_empty()
    }

    /// Diff bit width.
    pub fn bits(&self) -> u8 {
        self.diffs.bits()
    }

    /// Reconstructs row `i` given the reference value.
    #[inline]
    pub fn get(&self, i: usize, reference_value: i64) -> i64 {
        reference_value
            .wrapping_add(self.base)
            .wrapping_add(self.diffs.get(i) as i64)
    }

    /// Bulk decode.
    pub fn decode_into(&self, reference: &[i64], out: &mut Vec<i64>) -> Result<()> {
        if reference.len() != self.len() {
            return Err(Error::LengthMismatch {
                left: reference.len(),
                right: self.len(),
            });
        }
        out.clear();
        out.reserve(self.len());
        // Batched diff unpack fused with the reference add.
        let base = self.base;
        self.diffs.unpack_chunks(|start, chunk| {
            for (&r, &d) in reference[start..start + chunk.len()].iter().zip(chunk) {
                out.push(r.wrapping_add(base).wrapping_add(d as i64));
            }
        });
        Ok(())
    }

    /// Predicate pushdown: emits the positions (ascending) of all rows whose
    /// reconstructed value (`reference + base + diff`) matches `range`, in
    /// one streaming pass over the packed diffs.
    pub fn filter_into(
        &self,
        reference: &[i64],
        range: &IntRange,
        out: &mut Vec<u32>,
    ) -> Result<()> {
        if reference.len() != self.len() {
            return Err(Error::LengthMismatch {
                left: reference.len(),
                right: self.len(),
            });
        }
        out.clear();
        let base = self.base;
        self.diffs.unpack_chunks(|start, chunk| {
            for (j, &d) in chunk.iter().enumerate() {
                let v = reference[start + j]
                    .wrapping_add(base)
                    .wrapping_add(d as i64);
                if range.matches(v) {
                    out.push((start + j) as u32);
                }
            }
        });
        Ok(())
    }

    /// Aggregate pushdown: folds every reconstructed value
    /// (`reference + base + diff`) into `state` in one streaming pass over
    /// the packed diffs — no materialized vector.
    ///
    /// # Errors
    ///
    /// [`Error::LengthMismatch`] if `reference` is not aligned.
    pub fn aggregate_into(&self, reference: &[i64], state: &mut IntAggState) -> Result<()> {
        if reference.len() != self.len() {
            return Err(Error::LengthMismatch {
                left: reference.len(),
                right: self.len(),
            });
        }
        let base = self.base;
        self.diffs.unpack_chunks(|start, chunk| {
            for (&r, &d) in reference[start..start + chunk.len()].iter().zip(chunk) {
                state.update(r.wrapping_add(base).wrapping_add(d as i64));
            }
        });
        Ok(())
    }

    /// Compressed size in bytes.
    pub fn compressed_bytes(&self) -> usize {
        8 + 1 + self.diffs.tight_bytes()
    }

    /// Writes `base (i64) | diffs` little-endian.
    pub fn write_to(&self, buf: &mut impl bytes::BufMut) {
        buf.put_i64_le(self.base);
        self.diffs.write_to(buf);
    }

    /// Reads back a [`write_to`](Self::write_to) payload.
    ///
    /// # Errors
    ///
    /// [`Error::Corrupt`] on truncated or inconsistent input.
    pub fn read_from(buf: &mut impl bytes::Buf) -> Result<Self> {
        if buf.remaining() < 8 {
            return Err(Error::corrupt("dfor header truncated"));
        }
        let base = buf.get_i64_le();
        Ok(Self {
            base,
            diffs: BitPackedVec::read_from(buf)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let reference: Vec<i64> = (0..1_000).map(|i| 8_000 + i as i64).collect();
        let target: Vec<i64> = reference
            .iter()
            .enumerate()
            .map(|(i, &r)| r + 1 + (i as i64 % 30))
            .collect();
        let enc = Dfor::encode(&target, &reference).unwrap();
        assert_eq!(enc.bits(), 5);
        let mut out = Vec::new();
        enc.decode_into(&reference, &mut out).unwrap();
        assert_eq!(out, target);
        assert_eq!(enc.get(7, reference[7]), target[7]);
    }

    #[test]
    fn no_outlier_handling_means_full_width_on_spikes() {
        let reference: Vec<i64> = (0..1_000).map(|i| i as i64).collect();
        let mut target: Vec<i64> = reference.iter().map(|&r| r + (r % 8)).collect();
        target[500] = 1_000_000_000;
        let enc = Dfor::encode(&target, &reference).unwrap();
        // One spike blows up the whole column's width — the weakness Corra's
        // outlier region fixes.
        assert!(enc.bits() >= 30);
        let mut out = Vec::new();
        enc.decode_into(&reference, &mut out).unwrap();
        assert_eq!(out, target);
    }

    #[test]
    fn empty_and_mismatch() {
        assert!(Dfor::encode(&[], &[]).unwrap().is_empty());
        assert!(Dfor::encode(&[1], &[]).is_err());
    }
}
