//! C3's **1-to-1** encoding: "specialized for the case where one could
//! directly infer the diff-encoded column from the reference column."
//!
//! When a functional dependency reference → target holds (each reference
//! value maps to exactly one target value), the target column needs *zero*
//! bits per row — just a mapping table keyed by the reference's dictionary
//! code, plus an exception list for rows violating the dependency.

use corra_columnar::aggregate::IntAggState;
use corra_columnar::error::{Error, Result};
use corra_columnar::predicate::IntRange;
use rustc_hash::FxHashMap;

/// 1-to-1 mapping encoding of a target column w.r.t. a reference column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OneToOne {
    len: usize,
    /// Distinct reference values, sorted (the mapping key side).
    ref_keys: Vec<i64>,
    /// Mapped target value per key.
    mapped: Vec<i64>,
    /// Sorted exception row indices (rows violating the dependency).
    exc_pos: Vec<u32>,
    /// Exception values aligned with `exc_pos`.
    exc_val: Vec<i64>,
}

impl OneToOne {
    /// Encodes `target` against `reference`. The first observed target value
    /// per reference key becomes the mapping; later disagreeing rows become
    /// exceptions.
    pub fn encode(target: &[i64], reference: &[i64]) -> Result<Self> {
        if target.len() != reference.len() {
            return Err(Error::LengthMismatch {
                left: target.len(),
                right: reference.len(),
            });
        }
        let mut map: FxHashMap<i64, i64> = FxHashMap::default();
        let mut exc_pos = Vec::new();
        let mut exc_val = Vec::new();
        for (i, (&t, &r)) in target.iter().zip(reference).enumerate() {
            match map.entry(r) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(t);
                }
                std::collections::hash_map::Entry::Occupied(e) => {
                    if *e.get() != t {
                        exc_pos.push(i as u32);
                        exc_val.push(t);
                    }
                }
            }
        }
        let mut pairs: Vec<(i64, i64)> = map.into_iter().collect();
        pairs.sort_unstable_by_key(|&(k, _)| k);
        let (ref_keys, mapped) = pairs.into_iter().unzip();
        Ok(Self {
            len: target.len(),
            ref_keys,
            mapped,
            exc_pos,
            exc_val,
        })
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the column is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of exception rows (0 iff the dependency is exact).
    pub fn exceptions(&self) -> usize {
        self.exc_pos.len()
    }

    /// Whether the functional dependency held exactly.
    pub fn is_exact(&self) -> bool {
        self.exc_pos.is_empty()
    }

    /// Reconstructs row `i` from the reference value.
    pub fn get(&self, i: usize, reference_value: i64) -> i64 {
        if let Ok(k) = self.exc_pos.binary_search(&(i as u32)) {
            return self.exc_val[k];
        }
        let k = self
            .ref_keys
            .binary_search(&reference_value)
            .expect("reference value was present at encode time");
        self.mapped[k]
    }

    /// Bulk decode.
    pub fn decode_into(&self, reference: &[i64], out: &mut Vec<i64>) -> Result<()> {
        if reference.len() != self.len {
            return Err(Error::LengthMismatch {
                left: reference.len(),
                right: self.len,
            });
        }
        out.clear();
        out.reserve(self.len);
        // Memoize the previous key: references are frequently run-heavy, so
        // most rows skip the binary search entirely.
        let mut memo: Option<(i64, usize)> = None;
        for &r in reference {
            let k = match memo {
                Some((mr, mk)) if mr == r => mk,
                _ => {
                    let k = self
                        .ref_keys
                        .binary_search(&r)
                        .map_err(|_| Error::invalid("reference value unseen at encode time"))?;
                    memo = Some((r, k));
                    k
                }
            };
            out.push(self.mapped[k]);
        }
        for (j, &p) in self.exc_pos.iter().enumerate() {
            out[p as usize] = self.exc_val[j];
        }
        Ok(())
    }

    /// Predicate pushdown: evaluates `range` once per mapping entry (the
    /// distinct side of the functional dependency), then classifies each
    /// row by its reference key against the precomputed verdicts; exception
    /// rows are merged in by a sorted walk over the exception index.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidData`] if a reference value was unseen at encode
    /// time, as in [`decode_into`](Self::decode_into).
    pub fn filter_into(
        &self,
        reference: &[i64],
        range: &IntRange,
        out: &mut Vec<u32>,
    ) -> Result<()> {
        if reference.len() != self.len {
            return Err(Error::LengthMismatch {
                left: reference.len(),
                right: self.len,
            });
        }
        out.clear();
        let verdicts: Vec<bool> = self.mapped.iter().map(|&v| range.matches(v)).collect();
        let mut e = 0usize;
        for (i, &r) in reference.iter().enumerate() {
            let matched = if e < self.exc_pos.len() && self.exc_pos[e] == i as u32 {
                let m = range.matches(self.exc_val[e]);
                e += 1;
                m
            } else {
                let k = self
                    .ref_keys
                    .binary_search(&r)
                    .map_err(|_| Error::invalid("reference value unseen at encode time"))?;
                verdicts[k]
            };
            if matched {
                out.push(i as u32);
            }
        }
        Ok(())
    }

    /// Counts non-exception rows per mapping key (one memoized key lookup
    /// per row, no value reconstruction); exception rows are handed to
    /// `on_exception` as they appear in the sorted walk. Shared by the
    /// scalar and grouped aggregate kernels.
    fn key_counts(
        &self,
        reference: &[i64],
        mut on_exception: impl FnMut(usize, i64) -> Result<()>,
    ) -> Result<Vec<u64>> {
        let mut counts = vec![0u64; self.ref_keys.len()];
        let mut memo: Option<(i64, usize)> = None;
        let mut e = 0usize;
        for (i, &r) in reference.iter().enumerate() {
            if e < self.exc_pos.len() && self.exc_pos[e] == i as u32 {
                on_exception(i, self.exc_val[e])?;
                e += 1;
                continue;
            }
            let k = match memo {
                Some((mr, mk)) if mr == r => mk,
                _ => {
                    let k = self
                        .ref_keys
                        .binary_search(&r)
                        .map_err(|_| Error::invalid("reference value unseen at encode time"))?;
                    memo = Some((r, k));
                    k
                }
            };
            counts[k] += 1;
        }
        Ok(counts)
    }

    /// Aggregate pushdown: folds once per *mapping entry* weighted by its
    /// row count (`mapped · count`) — the per-row work is one memoized key
    /// lookup and a counter increment; exception rows fold verbatim.
    ///
    /// # Errors
    ///
    /// [`Error::LengthMismatch`] on misaligned columns,
    /// [`Error::InvalidData`] if a reference value was unseen at encode
    /// time.
    pub fn aggregate_into(&self, reference: &[i64], state: &mut IntAggState) -> Result<()> {
        if reference.len() != self.len {
            return Err(Error::LengthMismatch {
                left: reference.len(),
                right: self.len,
            });
        }
        let counts = self.key_counts(reference, |_, v| {
            state.update(v);
            Ok(())
        })?;
        for (&v, &n) in self.mapped.iter().zip(&counts) {
            state.update_n(v, n);
        }
        Ok(())
    }

    /// Grouped aggregation over the C3 reference: one partial state per
    /// distinct reference key (sorted key order), built from the same
    /// per-key counts — the "grouped SUM" reuses the mapping metadata
    /// instead of reconstructing any row. Exception rows fold into their
    /// row's key group. Keys with zero rows are omitted.
    ///
    /// # Errors
    ///
    /// As [`aggregate_into`](Self::aggregate_into).
    pub fn aggregate_by_key(&self, reference: &[i64]) -> Result<Vec<(i64, IntAggState)>> {
        if reference.len() != self.len {
            return Err(Error::LengthMismatch {
                left: reference.len(),
                right: self.len,
            });
        }
        let mut states = vec![IntAggState::default(); self.ref_keys.len()];
        let counts = self.key_counts(reference, |i, v| {
            let k = self
                .ref_keys
                .binary_search(&reference[i])
                .map_err(|_| Error::invalid("reference value unseen at encode time"))?;
            states[k].update(v);
            Ok(())
        })?;
        for (k, &n) in counts.iter().enumerate() {
            states[k].update_n(self.mapped[k], n);
        }
        Ok(self
            .ref_keys
            .iter()
            .zip(states)
            .filter(|(_, s)| s.count > 0)
            .map(|(&k, s)| (k, s))
            .collect())
    }

    /// Compressed size: mapping table + exceptions. Zero bits per row.
    ///
    /// The mapped-values side is charged; the key side rides along with the
    /// reference column's own dictionary (C3 keys the map by the reference
    /// dict code), so it is *not* charged here.
    pub fn compressed_bytes(&self) -> usize {
        self.mapped.len() * 8 + self.exc_pos.len() * 12
    }

    /// Writes `len (u64) | n_keys (u64) | ref_keys | mapped | n_exc (u64) |
    /// exc_pos | exc_val` little-endian.
    pub fn write_to(&self, buf: &mut impl bytes::BufMut) {
        buf.put_u64_le(self.len as u64);
        buf.put_u64_le(self.ref_keys.len() as u64);
        for &k in &self.ref_keys {
            buf.put_i64_le(k);
        }
        for &m in &self.mapped {
            buf.put_i64_le(m);
        }
        buf.put_u64_le(self.exc_pos.len() as u64);
        for &p in &self.exc_pos {
            buf.put_u32_le(p);
        }
        for &v in &self.exc_val {
            buf.put_i64_le(v);
        }
    }

    /// Reads back a [`write_to`](Self::write_to) payload, validating the
    /// sortedness invariants the lookup paths binary-search on.
    ///
    /// # Errors
    ///
    /// [`Error::Corrupt`] on truncation, unsorted keys or exception
    /// positions, or exception positions outside `0..len`.
    pub fn read_from(buf: &mut impl bytes::Buf) -> Result<Self> {
        if buf.remaining() < 16 {
            return Err(Error::corrupt("one-to-one header truncated"));
        }
        let len = buf.get_u64_le() as usize;
        let n_keys = buf.get_u64_le() as usize;
        if buf.remaining() < n_keys.saturating_mul(16).saturating_add(8) {
            return Err(Error::corrupt("one-to-one mapping truncated"));
        }
        let mut ref_keys = Vec::with_capacity(n_keys);
        for _ in 0..n_keys {
            ref_keys.push(buf.get_i64_le());
        }
        let mut mapped = Vec::with_capacity(n_keys);
        for _ in 0..n_keys {
            mapped.push(buf.get_i64_le());
        }
        let n_exc = buf.get_u64_le() as usize;
        if buf.remaining() < n_exc.saturating_mul(12) {
            return Err(Error::corrupt("one-to-one exceptions truncated"));
        }
        let mut exc_pos = Vec::with_capacity(n_exc);
        for _ in 0..n_exc {
            exc_pos.push(buf.get_u32_le());
        }
        let mut exc_val = Vec::with_capacity(n_exc);
        for _ in 0..n_exc {
            exc_val.push(buf.get_i64_le());
        }
        if ref_keys.windows(2).any(|w| w[0] >= w[1]) {
            return Err(Error::corrupt("one-to-one keys not strictly sorted"));
        }
        if exc_pos.windows(2).any(|w| w[0] >= w[1]) {
            return Err(Error::corrupt("one-to-one exceptions not sorted"));
        }
        if exc_pos.last().is_some_and(|&p| p as usize >= len) {
            return Err(Error::corrupt("one-to-one exception position out of range"));
        }
        Ok(Self {
            len,
            ref_keys,
            mapped,
            exc_pos,
            exc_val,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_dependency() {
        // zip -> city-id: every zip belongs to exactly one city.
        let reference: Vec<i64> = (0..10_000).map(|i| 10_000 + (i as i64 % 500)).collect();
        let target: Vec<i64> = reference.iter().map(|&z| z / 100).collect();
        let enc = OneToOne::encode(&target, &reference).unwrap();
        assert!(enc.is_exact());
        let mut out = Vec::new();
        enc.decode_into(&reference, &mut out).unwrap();
        assert_eq!(out, target);
        assert_eq!(enc.get(77, reference[77]), target[77]);
        // 500 mapping entries only.
        assert_eq!(enc.compressed_bytes(), 500 * 8);
    }

    #[test]
    fn violations_become_exceptions() {
        let reference = vec![1i64, 1, 2, 2, 1];
        let target = vec![10i64, 10, 20, 21, 11];
        let enc = OneToOne::encode(&target, &reference).unwrap();
        assert_eq!(enc.exceptions(), 2); // rows 3 and 4 disagree
        let mut out = Vec::new();
        enc.decode_into(&reference, &mut out).unwrap();
        assert_eq!(out, target);
        assert_eq!(enc.get(3, 2), 21);
        assert_eq!(enc.get(4, 1), 11);
    }

    #[test]
    fn unseen_reference_value_errors() {
        let enc = OneToOne::encode(&[5], &[1]).unwrap();
        let mut out = Vec::new();
        assert!(enc.decode_into(&[2], &mut out).is_err());
    }

    #[test]
    fn empty_and_mismatch() {
        assert!(OneToOne::encode(&[], &[]).unwrap().is_empty());
        assert!(OneToOne::encode(&[1], &[]).is_err());
    }

    #[test]
    fn beats_everything_on_exact_dependencies() {
        let reference: Vec<i64> = (0..50_000).map(|i| i as i64 % 1_000).collect();
        let target: Vec<i64> = reference.iter().map(|&r| r * 7 + 13).collect();
        let one = OneToOne::encode(&target, &reference).unwrap();
        let dfor = crate::dfor::Dfor::encode(&target, &reference).unwrap();
        assert!(one.compressed_bytes() < dfor.compressed_bytes() / 4);
    }
}
