//! C3's per-pair scheme selection: "we let C3 choose the (correlation-aware)
//! encoding scheme for a given pair of columns" (Table 3 protocol).

use corra_columnar::aggregate::IntAggState;
use corra_columnar::error::{Error, Result};
use corra_columnar::predicate::IntRange;

use crate::dfor::Dfor;
use crate::hier_for::HierFor;
use crate::numerical::Numerical;
use crate::one_to_one::OneToOne;

/// The C3 scheme chosen for a column pair.
#[derive(Debug, Clone, PartialEq)]
pub enum C3Encoding {
    /// Diff + FOR.
    Dfor(Dfor),
    /// Affine function + residual FOR.
    Numerical(Numerical),
    /// Functional-dependency mapping.
    OneToOne(OneToOne),
    /// Hierarchical family: per-reference child dictionary + FOR index.
    HierFor(HierFor),
}

impl C3Encoding {
    /// Scheme name as printed in Table 3.
    pub fn scheme(&self) -> &'static str {
        match self {
            C3Encoding::Dfor(_) => "DFOR",
            C3Encoding::Numerical(_) => "Numerical",
            C3Encoding::OneToOne(_) => "1-to-1",
            C3Encoding::HierFor(e) => {
                if e.is_one_to_one() {
                    "1-to-1"
                } else {
                    "DFOR (hier)"
                }
            }
        }
    }

    /// Compressed size in bytes.
    pub fn compressed_bytes(&self) -> usize {
        match self {
            C3Encoding::Dfor(e) => e.compressed_bytes(),
            C3Encoding::Numerical(e) => e.compressed_bytes(),
            C3Encoding::OneToOne(e) => e.compressed_bytes(),
            C3Encoding::HierFor(e) => e.compressed_bytes(),
        }
    }

    /// Bulk decode through the reference column.
    pub fn decode_into(&self, reference: &[i64], out: &mut Vec<i64>) -> Result<()> {
        match self {
            C3Encoding::Dfor(e) => e.decode_into(reference, out),
            C3Encoding::Numerical(e) => e.decode_into(reference, out),
            C3Encoding::OneToOne(e) => e.decode_into(reference, out),
            C3Encoding::HierFor(e) => e.decode_into(reference, out),
        }
    }

    /// Predicate pushdown through the reference column: each scheme's
    /// compressed-domain filter kernel (streaming reconstruction for
    /// DFOR/Numerical, per-distinct-entry evaluation for 1-to-1 and the
    /// hierarchical family).
    pub fn filter_into(
        &self,
        reference: &[i64],
        range: &IntRange,
        out: &mut Vec<u32>,
    ) -> Result<()> {
        match self {
            C3Encoding::Dfor(e) => e.filter_into(reference, range, out),
            C3Encoding::Numerical(e) => e.filter_into(reference, range, out),
            C3Encoding::OneToOne(e) => e.filter_into(reference, range, out),
            C3Encoding::HierFor(e) => e.filter_into(reference, range, out),
        }
    }

    /// Aggregate pushdown through the reference column: each scheme's
    /// compressed-domain fold kernel (streaming reconstruction for
    /// DFOR/Numerical, per-distinct-entry weighted folds for 1-to-1 and the
    /// hierarchical family).
    ///
    /// # Errors
    ///
    /// As the underlying scheme kernels (misaligned reference, unseen
    /// reference values, corrupt codes).
    pub fn aggregate_into(&self, reference: &[i64], state: &mut IntAggState) -> Result<()> {
        match self {
            C3Encoding::Dfor(e) => e.aggregate_into(reference, state),
            C3Encoding::Numerical(e) => e.aggregate_into(reference, state),
            C3Encoding::OneToOne(e) => e.aggregate_into(reference, state),
            C3Encoding::HierFor(e) => e.aggregate_into(reference, state),
        }
    }

    /// Writes `tag (u8) | scheme payload` little-endian.
    pub fn write_to(&self, buf: &mut impl bytes::BufMut) {
        match self {
            C3Encoding::Dfor(e) => {
                buf.put_u8(0);
                e.write_to(buf);
            }
            C3Encoding::Numerical(e) => {
                buf.put_u8(1);
                e.write_to(buf);
            }
            C3Encoding::OneToOne(e) => {
                buf.put_u8(2);
                e.write_to(buf);
            }
            C3Encoding::HierFor(e) => {
                buf.put_u8(3);
                e.write_to(buf);
            }
        }
    }

    /// Reads back a [`write_to`](Self::write_to) payload.
    ///
    /// # Errors
    ///
    /// [`Error::Corrupt`] on an unknown tag or a corrupt scheme payload.
    pub fn read_from(buf: &mut impl bytes::Buf) -> Result<Self> {
        if buf.remaining() < 1 {
            return Err(Error::corrupt("c3 encoding tag truncated"));
        }
        match buf.get_u8() {
            0 => Ok(C3Encoding::Dfor(Dfor::read_from(buf)?)),
            1 => Ok(C3Encoding::Numerical(Numerical::read_from(buf)?)),
            2 => Ok(C3Encoding::OneToOne(OneToOne::read_from(buf)?)),
            3 => Ok(C3Encoding::HierFor(HierFor::read_from(buf)?)),
            t => Err(Error::corrupt(format!("unknown c3 encoding tag {t}"))),
        }
    }
}

/// Encodes `target` with every C3 scheme and returns the smallest.
///
/// The 1-to-1 scheme is only eligible when the dependency is (nearly)
/// functional — C3 applies it to pairs like (city, zip) where the reverse
/// mapping is exact; a high exception count disqualifies it.
pub fn choose(target: &[i64], reference: &[i64]) -> Result<C3Encoding> {
    let dfor = C3Encoding::Dfor(Dfor::encode(target, reference)?);
    let numerical = C3Encoding::Numerical(Numerical::encode(target, reference)?);
    let one = OneToOne::encode(target, reference)?;
    let mut best = if numerical.compressed_bytes() < dfor.compressed_bytes() {
        numerical
    } else {
        dfor
    };
    // 1-to-1 qualifies with < 5% exceptions.
    if one.exceptions() * 20 < target.len().max(1) {
        let one = C3Encoding::OneToOne(one);
        if one.compressed_bytes() < best.compressed_bytes() {
            best = one;
        }
    }
    // The hierarchical family qualifies when the reference cardinality is
    // small enough for per-reference dictionaries to amortize.
    let distinct = {
        let mut v = reference.to_vec();
        v.sort_unstable();
        v.dedup();
        v.len()
    };
    if distinct * 16 < target.len().max(1) {
        let hf = C3Encoding::HierFor(HierFor::encode(target, reference)?);
        if hf.compressed_bytes() < best.compressed_bytes() {
            best = hf;
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_dfor_for_bounded_diffs() {
        let reference: Vec<i64> = (0..20_000)
            .map(|i| 8_000 + (i as i64 * 13 % 2_500))
            .collect();
        let target: Vec<i64> = reference
            .iter()
            .enumerate()
            .map(|(i, &r)| r + 1 + (i as i64 % 30))
            .collect();
        let enc = choose(&target, &reference).unwrap();
        // DFOR and Numerical tie here (slope 1); either is acceptable, but
        // it must decode losslessly and be small.
        let mut out = Vec::new();
        enc.decode_into(&reference, &mut out).unwrap();
        assert_eq!(out, target);
        assert!(enc.compressed_bytes() < 20_000); // < 8 bits/row
    }

    #[test]
    fn picks_numerical_for_affine() {
        let reference: Vec<i64> = (0..20_000).map(|i| i as i64).collect();
        let target: Vec<i64> = reference
            .iter()
            .enumerate()
            .map(|(i, &r)| 5 * r + (i as i64 % 4))
            .collect();
        let enc = choose(&target, &reference).unwrap();
        assert_eq!(enc.scheme(), "Numerical");
    }

    #[test]
    fn picks_one_to_one_for_functional_dependency() {
        let reference: Vec<i64> = (0..20_000).map(|i| i as i64 % 300).collect();
        let target: Vec<i64> = reference.iter().map(|&r| (r * r) % 10_007).collect();
        let enc = choose(&target, &reference).unwrap();
        assert_eq!(enc.scheme(), "1-to-1");
        let mut out = Vec::new();
        enc.decode_into(&reference, &mut out).unwrap();
        assert_eq!(out, target);
    }

    #[test]
    fn one_to_one_disqualified_by_exceptions() {
        // Noisy mapping: >5% violations.
        let reference: Vec<i64> = (0..10_000).map(|i| i as i64 % 100).collect();
        let target: Vec<i64> = reference
            .iter()
            .enumerate()
            .map(|(i, &r)| if i % 10 == 0 { i as i64 } else { r * 3 })
            .collect();
        let enc = choose(&target, &reference).unwrap();
        assert_ne!(enc.scheme(), "1-to-1");
        let mut out = Vec::new();
        enc.decode_into(&reference, &mut out).unwrap();
        assert_eq!(out, target);
    }
}
