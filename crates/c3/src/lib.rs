//! # corra-c3
//!
//! From-scratch implementation of **C3** (Glas et al.), the independently
//! developed correlation-aware compression framework the Corra paper
//! compares against in its Table 3:
//!
//! * [`dfor::Dfor`] — diff against the reference, FOR + bit-pack the diff
//!   column (no outlier region);
//! * [`numerical::Numerical`] — the non-hierarchical scheme generalized to
//!   an affine function with fixed-point slope and FOR-packed residuals;
//! * [`one_to_one::OneToOne`] — zero-bits-per-row mapping for functional
//!   dependencies, with an exception list;
//! * [`hier_for::HierFor`] — C3's hierarchical family: per-reference child
//!   dictionaries with a FOR-packed index column (collapsing to 1-to-1 when
//!   the dependency is functional);
//! * [`chooser::choose`] — per-pair scheme selection by compressed size.
//!
//! Notably absent (as the paper points out): multi-reference support — C3
//! cannot express Taxi's `total_amount` formula mixture.
//!
//! Every scheme implements a `filter_into` pushdown kernel mirroring
//! `corra-core::scan`'s reconstruction rules, so scan parity can be
//! measured across both frameworks.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod chooser;
pub mod dfor;
pub mod hier_for;
pub mod numerical;
pub mod one_to_one;

// Format-v2 framing: every C3 scheme serializes with the same length-prefix
// frame as the Corra codecs, so C3-encoded payloads are independently
// addressable in indexed storage too.
corra_columnar::impl_framed!(
    chooser::C3Encoding,
    dfor::Dfor,
    hier_for::HierFor,
    numerical::Numerical,
    one_to_one::OneToOne,
);

pub use chooser::{choose, C3Encoding};
pub use dfor::Dfor;
pub use hier_for::HierFor;
pub use numerical::Numerical;
pub use one_to_one::OneToOne;
