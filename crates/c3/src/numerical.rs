//! C3's **Numerical** encoding: the non-hierarchical scheme generalized to
//! an affine function. The target is modeled as
//! `target ≈ (slope_num · reference) / 2^SLOPE_SHIFT + intercept` with the
//! residual FOR-encoded. With a fitted slope this exploits affine-like
//! correlations (e.g. the Taxi (pickup, dropoff) pair, where C3 beats plain
//! diff encoding in Table 3).
//!
//! All prediction arithmetic is in fixed-point integers, so reconstruction
//! is exactly deterministic and lossless.

use corra_columnar::aggregate::IntAggState;
use corra_columnar::bitpack::BitPackedVec;
use corra_columnar::error::{Error, Result};
use corra_columnar::predicate::IntRange;

/// Fixed-point fractional bits of the fitted slope.
pub const SLOPE_SHIFT: u32 = 16;

/// Affine-function encoding of a column w.r.t. a reference column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Numerical {
    /// Fixed-point slope (`slope_num / 2^SLOPE_SHIFT`).
    slope_num: i64,
    /// Residual frame base (absorbs the intercept).
    base: i64,
    /// FOR-packed residuals.
    residuals: BitPackedVec,
}

#[inline]
fn predict(slope_num: i64, reference: i64) -> i64 {
    (((slope_num as i128) * (reference as i128)) >> SLOPE_SHIFT) as i64
}

impl Numerical {
    /// Encodes `target` against `reference` with a least-squares-fitted
    /// slope (quantized to fixed point).
    pub fn encode(target: &[i64], reference: &[i64]) -> Result<Self> {
        if target.len() != reference.len() {
            return Err(Error::LengthMismatch {
                left: target.len(),
                right: reference.len(),
            });
        }
        let slope = fit_slope(target, reference);
        Self::encode_with_slope(target, reference, slope)
    }

    /// Encodes with an explicit fixed-point slope numerator.
    pub fn encode_with_slope(target: &[i64], reference: &[i64], slope_num: i64) -> Result<Self> {
        if target.len() != reference.len() {
            return Err(Error::LengthMismatch {
                left: target.len(),
                right: reference.len(),
            });
        }
        let residuals_raw: Vec<i64> = target
            .iter()
            .zip(reference)
            .map(|(&t, &r)| t.wrapping_sub(predict(slope_num, r)))
            .collect();
        let base = residuals_raw.iter().copied().min().unwrap_or(0);
        let offsets: Vec<u64> = residuals_raw
            .iter()
            .map(|&d| (d as i128 - base as i128) as u64)
            .collect();
        Ok(Self {
            slope_num,
            base,
            residuals: BitPackedVec::pack_minimal(&offsets),
        })
    }

    /// The fitted slope as a float (for reporting).
    pub fn slope(&self) -> f64 {
        self.slope_num as f64 / (1u64 << SLOPE_SHIFT) as f64
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.residuals.len()
    }

    /// Whether the column is empty.
    pub fn is_empty(&self) -> bool {
        self.residuals.is_empty()
    }

    /// Residual bit width.
    pub fn bits(&self) -> u8 {
        self.residuals.bits()
    }

    /// Reconstructs row `i` from the reference value.
    #[inline]
    pub fn get(&self, i: usize, reference_value: i64) -> i64 {
        predict(self.slope_num, reference_value)
            .wrapping_add(self.base)
            .wrapping_add(self.residuals.get(i) as i64)
    }

    /// Bulk decode.
    pub fn decode_into(&self, reference: &[i64], out: &mut Vec<i64>) -> Result<()> {
        if reference.len() != self.len() {
            return Err(Error::LengthMismatch {
                left: reference.len(),
                right: self.len(),
            });
        }
        out.clear();
        out.reserve(self.len());
        // Batched residual unpack fused with the affine prediction.
        let (slope_num, base) = (self.slope_num, self.base);
        self.residuals.unpack_chunks(|start, chunk| {
            for (&r, &d) in reference[start..start + chunk.len()].iter().zip(chunk) {
                out.push(
                    predict(slope_num, r)
                        .wrapping_add(base)
                        .wrapping_add(d as i64),
                );
            }
        });
        Ok(())
    }

    /// Predicate pushdown: reconstructs each row through the fixed-point
    /// affine prediction and tests `range` in one streaming pass.
    pub fn filter_into(
        &self,
        reference: &[i64],
        range: &IntRange,
        out: &mut Vec<u32>,
    ) -> Result<()> {
        if reference.len() != self.len() {
            return Err(Error::LengthMismatch {
                left: reference.len(),
                right: self.len(),
            });
        }
        out.clear();
        let (slope_num, base) = (self.slope_num, self.base);
        self.residuals.unpack_chunks(|start, chunk| {
            for (j, &d) in chunk.iter().enumerate() {
                let v = predict(slope_num, reference[start + j])
                    .wrapping_add(base)
                    .wrapping_add(d as i64);
                if range.matches(v) {
                    out.push((start + j) as u32);
                }
            }
        });
        Ok(())
    }

    /// Aggregate pushdown: folds every reconstructed value through the
    /// fixed-point affine prediction in one streaming pass.
    ///
    /// # Errors
    ///
    /// [`Error::LengthMismatch`] if `reference` is not aligned.
    pub fn aggregate_into(&self, reference: &[i64], state: &mut IntAggState) -> Result<()> {
        if reference.len() != self.len() {
            return Err(Error::LengthMismatch {
                left: reference.len(),
                right: self.len(),
            });
        }
        let (slope_num, base) = (self.slope_num, self.base);
        self.residuals.unpack_chunks(|start, chunk| {
            for (&r, &d) in reference[start..start + chunk.len()].iter().zip(chunk) {
                state.update(
                    predict(slope_num, r)
                        .wrapping_add(base)
                        .wrapping_add(d as i64),
                );
            }
        });
        Ok(())
    }

    /// Compressed size in bytes (slope + base + residual payload).
    pub fn compressed_bytes(&self) -> usize {
        8 + 8 + 1 + self.residuals.tight_bytes()
    }

    /// Writes `slope_num (i64) | base (i64) | residuals` little-endian.
    pub fn write_to(&self, buf: &mut impl bytes::BufMut) {
        buf.put_i64_le(self.slope_num);
        buf.put_i64_le(self.base);
        self.residuals.write_to(buf);
    }

    /// Reads back a [`write_to`](Self::write_to) payload.
    ///
    /// # Errors
    ///
    /// [`Error::Corrupt`] on truncated or inconsistent input.
    pub fn read_from(buf: &mut impl bytes::Buf) -> Result<Self> {
        if buf.remaining() < 16 {
            return Err(Error::corrupt("numerical header truncated"));
        }
        let slope_num = buf.get_i64_le();
        let base = buf.get_i64_le();
        Ok(Self {
            slope_num,
            base,
            residuals: BitPackedVec::read_from(buf)?,
        })
    }
}

/// Least-squares slope of target on reference, quantized to fixed point and
/// clamped to a sane range. Falls back to slope 1 for degenerate inputs
/// (the classic diff case).
pub fn fit_slope(target: &[i64], reference: &[i64]) -> i64 {
    let n = target.len();
    if n == 0 {
        return 1 << SLOPE_SHIFT;
    }
    let mean_r: f64 = reference.iter().map(|&r| r as f64).sum::<f64>() / n as f64;
    let mean_t: f64 = target.iter().map(|&t| t as f64).sum::<f64>() / n as f64;
    let mut cov = 0f64;
    let mut var = 0f64;
    for (&t, &r) in target.iter().zip(reference) {
        let dr = r as f64 - mean_r;
        cov += dr * (t as f64 - mean_t);
        var += dr * dr;
    }
    if var < 1e-9 {
        return 1 << SLOPE_SHIFT;
    }
    let slope = (cov / var).clamp(-1024.0, 1024.0);
    (slope * (1u64 << SLOPE_SHIFT) as f64).round() as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slope_one_equals_diff_behaviour() {
        let reference: Vec<i64> = (0..1_000).map(|i| 5_000 + i as i64).collect();
        let target: Vec<i64> = reference
            .iter()
            .enumerate()
            .map(|(i, &r)| r + (i as i64 % 16))
            .collect();
        let enc = Numerical::encode(&target, &reference).unwrap();
        assert!((enc.slope() - 1.0).abs() < 0.01, "slope {}", enc.slope());
        let mut out = Vec::new();
        enc.decode_into(&reference, &mut out).unwrap();
        assert_eq!(out, target);
    }

    #[test]
    fn affine_correlation_beats_plain_diff() {
        // target ≈ 3·ref + noise: diff range grows with ref (bad for DFOR),
        // affine residual stays tiny.
        let reference: Vec<i64> = (0..10_000).map(|i| i as i64).collect();
        let target: Vec<i64> = reference
            .iter()
            .enumerate()
            .map(|(i, &r)| 3 * r + (i as i64 % 8))
            .collect();
        let num = Numerical::encode(&target, &reference).unwrap();
        let dfor = crate::dfor::Dfor::encode(&target, &reference).unwrap();
        assert!(
            num.compressed_bytes() * 2 < dfor.compressed_bytes(),
            "numerical {} dfor {}",
            num.compressed_bytes(),
            dfor.compressed_bytes()
        );
        let mut out = Vec::new();
        num.decode_into(&reference, &mut out).unwrap();
        assert_eq!(out, target);
    }

    #[test]
    fn lossless_on_uncorrelated_data() {
        let reference: Vec<i64> = (0..500)
            .map(|i| (i as i64).wrapping_mul(2_654_435_761))
            .collect();
        let target: Vec<i64> = (0..500).map(|i| (i as i64 * 97) % 1_000).collect();
        let enc = Numerical::encode(&target, &reference).unwrap();
        let mut out = Vec::new();
        enc.decode_into(&reference, &mut out).unwrap();
        assert_eq!(out, target);
        for i in [0, 100, 499] {
            assert_eq!(enc.get(i, reference[i]), target[i]);
        }
    }

    #[test]
    fn fractional_slope() {
        // target = ref/2 + small noise.
        let reference: Vec<i64> = (0..4_000).map(|i| i as i64 * 2).collect();
        let target: Vec<i64> = reference
            .iter()
            .enumerate()
            .map(|(i, &r)| r / 2 + (i as i64 % 4))
            .collect();
        let enc = Numerical::encode(&target, &reference).unwrap();
        assert!((enc.slope() - 0.5).abs() < 0.01);
        assert!(enc.bits() <= 4, "bits {}", enc.bits());
        let mut out = Vec::new();
        enc.decode_into(&reference, &mut out).unwrap();
        assert_eq!(out, target);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(Numerical::encode(&[], &[]).unwrap().is_empty());
        assert!(Numerical::encode(&[1], &[1, 2]).is_err());
        // Constant reference: slope falls back, still lossless.
        let reference = vec![7i64; 100];
        let target: Vec<i64> = (0..100).map(|i| i as i64).collect();
        let enc = Numerical::encode(&target, &reference).unwrap();
        let mut out = Vec::new();
        enc.decode_into(&reference, &mut out).unwrap();
        assert_eq!(out, target);
    }

    #[test]
    fn explicit_slope() {
        let reference: Vec<i64> = (0..100).collect();
        let target: Vec<i64> = reference.iter().map(|&r| 2 * r).collect();
        let enc = Numerical::encode_with_slope(&target, &reference, 2 << SLOPE_SHIFT).unwrap();
        assert_eq!(enc.bits(), 0); // perfect fit
        let mut out = Vec::new();
        enc.decode_into(&reference, &mut out).unwrap();
        assert_eq!(out, target);
    }
}
