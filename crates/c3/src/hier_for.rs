//! C3's hierarchical-family encoding: per-reference-value child
//! dictionaries with the per-row group index compressed via FOR.
//!
//! The Corra paper describes C3 as "explor\[ing\] more implementations of
//! hierarchical encoding schemes, e.g., using FOR for the diff-encoded
//! column", and its 1-to-1 scheme as the special case where the child is
//! directly inferable from the reference. [`HierFor`] covers both: each
//! distinct reference value owns an ordered list of its children; a row
//! stores the child's index in that list, FOR + bit-packed. When every
//! reference value has exactly one child the index column packs to zero
//! bits — the 1-to-1 case.

use corra_columnar::aggregate::IntAggState;
use corra_columnar::bitpack::BitPackedVec;
use corra_columnar::error::{Error, Result};
use corra_columnar::predicate::IntRange;
use rustc_hash::FxHashMap;

/// Hierarchical FOR encoding keyed by raw reference values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierFor {
    /// Sorted distinct reference values.
    ref_keys: Vec<i64>,
    /// Flattened child values grouped by reference key.
    children: Vec<i64>,
    /// Group start offsets (len = ref_keys.len() + 1).
    offsets: Vec<u32>,
    /// Per-row index within the reference's group, FOR-packed.
    codes: BitPackedVec,
}

impl HierFor {
    /// Encodes `target` against `reference`.
    pub fn encode(target: &[i64], reference: &[i64]) -> Result<Self> {
        if target.len() != reference.len() {
            return Err(Error::LengthMismatch {
                left: target.len(),
                right: reference.len(),
            });
        }
        // Group children per reference value, insertion-ordered.
        let mut groups: FxHashMap<i64, Vec<i64>> = FxHashMap::default();
        let mut index: FxHashMap<(i64, i64), u32> = FxHashMap::default();
        let mut raw_codes = Vec::with_capacity(target.len());
        for (&t, &r) in target.iter().zip(reference) {
            let code = *index.entry((r, t)).or_insert_with(|| {
                let g = groups.entry(r).or_default();
                g.push(t);
                (g.len() - 1) as u32
            });
            raw_codes.push(code as u64);
        }
        let mut ref_keys: Vec<i64> = groups.keys().copied().collect();
        ref_keys.sort_unstable();
        let mut children = Vec::new();
        let mut offsets = Vec::with_capacity(ref_keys.len() + 1);
        offsets.push(0u32);
        for k in &ref_keys {
            children.extend_from_slice(&groups[k]);
            offsets.push(children.len() as u32);
        }
        Ok(Self {
            ref_keys,
            children,
            offsets,
            codes: BitPackedVec::pack_minimal(&raw_codes),
        })
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Whether the column is empty.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Per-row index width (0 in the pure 1-to-1 case).
    pub fn bits(&self) -> u8 {
        self.codes.bits()
    }

    /// Whether the dependency is functional (1-to-1 case).
    pub fn is_one_to_one(&self) -> bool {
        self.codes.bits() == 0
    }

    /// Reconstructs row `i` from the reference value.
    pub fn get(&self, i: usize, reference_value: i64) -> i64 {
        let k = self
            .ref_keys
            .binary_search(&reference_value)
            .expect("reference value was present at encode time");
        self.children[(self.offsets[k] + self.codes.get(i) as u32) as usize]
    }

    /// Bulk decode.
    pub fn decode_into(&self, reference: &[i64], out: &mut Vec<i64>) -> Result<()> {
        if reference.len() != self.len() {
            return Err(Error::LengthMismatch {
                left: reference.len(),
                right: self.len(),
            });
        }
        out.clear();
        out.reserve(self.len());
        // Batched group-index unpack; the key lookup memoizes the previous
        // reference value (references are frequently run-heavy).
        let mut unseen = false;
        let mut bad_code = false;
        let mut memo: Option<(i64, usize)> = None;
        self.codes.unpack_chunks(|start, chunk| {
            if unseen || bad_code {
                return;
            }
            for (&r, &c) in reference[start..start + chunk.len()].iter().zip(chunk) {
                let k = match memo {
                    Some((mr, mk)) if mr == r => mk,
                    _ => match self.ref_keys.binary_search(&r) {
                        Ok(k) => {
                            memo = Some((r, k));
                            k
                        }
                        Err(_) => {
                            unseen = true;
                            return;
                        }
                    },
                };
                // A code must index within its row's group — a hostile
                // payload cannot be bounded at read time (the row -> group
                // mapping depends on the reference), so it is checked here.
                let idx = self.offsets[k] as usize + c as usize;
                if idx >= self.offsets[k + 1] as usize {
                    bad_code = true;
                    return;
                }
                out.push(self.children[idx]);
            }
        });
        if unseen {
            return Err(Error::invalid("reference value unseen at encode time"));
        }
        if bad_code {
            return Err(Error::corrupt("hier-for code outside its group"));
        }
        Ok(())
    }

    /// Predicate pushdown: evaluates `range` once per distinct
    /// (reference, child) metadata entry, then tests each row by indexing
    /// the verdicts with `offsets[key] + code` — no child value is
    /// reconstructed per row.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidData`] if a reference value was unseen at encode
    /// time, as in [`decode_into`](Self::decode_into).
    pub fn filter_into(
        &self,
        reference: &[i64],
        range: &IntRange,
        out: &mut Vec<u32>,
    ) -> Result<()> {
        if reference.len() != self.len() {
            return Err(Error::LengthMismatch {
                left: reference.len(),
                right: self.len(),
            });
        }
        out.clear();
        let verdicts: Vec<bool> = self.children.iter().map(|&v| range.matches(v)).collect();
        let mut unseen = false;
        let mut bad_code = false;
        let mut memo: Option<(i64, usize)> = None;
        self.codes.unpack_chunks(|start, chunk| {
            if unseen || bad_code {
                return;
            }
            for (j, &c) in chunk.iter().enumerate() {
                let r = reference[start + j];
                let k = match memo {
                    Some((mr, mk)) if mr == r => mk,
                    _ => match self.ref_keys.binary_search(&r) {
                        Ok(k) => {
                            memo = Some((r, k));
                            k
                        }
                        Err(_) => {
                            unseen = true;
                            return;
                        }
                    },
                };
                let idx = self.offsets[k] as usize + c as usize;
                if idx >= self.offsets[k + 1] as usize {
                    bad_code = true;
                    return;
                }
                if verdicts[idx] {
                    out.push((start + j) as u32);
                }
            }
        });
        if unseen {
            return Err(Error::invalid("reference value unseen at encode time"));
        }
        if bad_code {
            return Err(Error::corrupt("hier-for code outside its group"));
        }
        Ok(())
    }

    /// Counts rows per metadata address (`offsets[key] + code`) in one
    /// streaming pass — the same address Alg.-1-style access reads, with no
    /// child value reconstructed. Shared by the aggregate kernels.
    fn address_counts(&self, reference: &[i64]) -> Result<Vec<u64>> {
        let mut counts = vec![0u64; self.children.len()];
        let mut unseen = false;
        let mut bad_code = false;
        let mut memo: Option<(i64, usize)> = None;
        self.codes.unpack_chunks(|start, chunk| {
            if unseen || bad_code {
                return;
            }
            for (&r, &c) in reference[start..start + chunk.len()].iter().zip(chunk) {
                let k = match memo {
                    Some((mr, mk)) if mr == r => mk,
                    _ => match self.ref_keys.binary_search(&r) {
                        Ok(k) => {
                            memo = Some((r, k));
                            k
                        }
                        Err(_) => {
                            unseen = true;
                            return;
                        }
                    },
                };
                let idx = self.offsets[k] as usize + c as usize;
                if idx >= self.offsets[k + 1] as usize {
                    bad_code = true;
                    return;
                }
                counts[idx] += 1;
            }
        });
        if unseen {
            return Err(Error::invalid("reference value unseen at encode time"));
        }
        if bad_code {
            return Err(Error::corrupt("hier-for code outside its group"));
        }
        Ok(counts)
    }

    /// Aggregate pushdown: folds once per distinct (reference, child)
    /// metadata entry weighted by its address count (`child · count`) — the
    /// per-row work is one memoized key lookup and a counter increment.
    ///
    /// # Errors
    ///
    /// [`Error::LengthMismatch`] on misaligned columns,
    /// [`Error::InvalidData`] for unseen reference values, or
    /// [`Error::Corrupt`] for codes outside their group.
    pub fn aggregate_into(&self, reference: &[i64], state: &mut IntAggState) -> Result<()> {
        if reference.len() != self.len() {
            return Err(Error::LengthMismatch {
                left: reference.len(),
                right: self.len(),
            });
        }
        let counts = self.address_counts(reference)?;
        for (&v, &n) in self.children.iter().zip(&counts) {
            state.update_n(v, n);
        }
        Ok(())
    }

    /// Grouped aggregation over the C3 reference: one partial state per
    /// distinct reference key (sorted key order). The per-key fold walks
    /// only that key's slice of the metadata arrays — `group_sums` come
    /// straight from the per-address counts, with zero per-row
    /// reconstruction. Keys with zero rows are omitted.
    ///
    /// # Errors
    ///
    /// As [`aggregate_into`](Self::aggregate_into).
    pub fn aggregate_by_key(&self, reference: &[i64]) -> Result<Vec<(i64, IntAggState)>> {
        if reference.len() != self.len() {
            return Err(Error::LengthMismatch {
                left: reference.len(),
                right: self.len(),
            });
        }
        let counts = self.address_counts(reference)?;
        let mut out = Vec::new();
        for (k, &key) in self.ref_keys.iter().enumerate() {
            let (lo, hi) = (self.offsets[k] as usize, self.offsets[k + 1] as usize);
            let mut state = IntAggState::default();
            for (&v, &n) in self.children[lo..hi].iter().zip(&counts[lo..hi]) {
                state.update_n(v, n);
            }
            if state.count > 0 {
                out.push((key, state));
            }
        }
        Ok(out)
    }

    /// Compressed size: packed index column + child values + offsets.
    ///
    /// As with [`crate::one_to_one::OneToOne`], the reference-key side rides
    /// along with the reference column's own dictionary and is not charged.
    pub fn compressed_bytes(&self) -> usize {
        1 + self.codes.tight_bytes() + self.children.len() * 8 + self.offsets.len() * 4
    }

    /// Writes `n_keys (u64) | ref_keys | n_children (u64) | children |
    /// offsets (n_keys + 1 u32s) | codes` little-endian.
    pub fn write_to(&self, buf: &mut impl bytes::BufMut) {
        buf.put_u64_le(self.ref_keys.len() as u64);
        for &k in &self.ref_keys {
            buf.put_i64_le(k);
        }
        buf.put_u64_le(self.children.len() as u64);
        for &c in &self.children {
            buf.put_i64_le(c);
        }
        for &o in &self.offsets {
            buf.put_u32_le(o);
        }
        self.codes.write_to(buf);
    }

    /// Reads back a [`write_to`](Self::write_to) payload, validating the
    /// sorted-key and monotone-offset invariants the lookup paths rely on.
    ///
    /// # Errors
    ///
    /// [`Error::Corrupt`] on truncation or violated invariants.
    pub fn read_from(buf: &mut impl bytes::Buf) -> Result<Self> {
        if buf.remaining() < 8 {
            return Err(Error::corrupt("hier-for header truncated"));
        }
        let n_keys = buf.get_u64_le() as usize;
        if buf.remaining() < n_keys.saturating_mul(8).saturating_add(8) {
            return Err(Error::corrupt("hier-for keys truncated"));
        }
        let mut ref_keys = Vec::with_capacity(n_keys);
        for _ in 0..n_keys {
            ref_keys.push(buf.get_i64_le());
        }
        let n_children = buf.get_u64_le() as usize;
        let offsets_len = n_keys.saturating_add(1);
        if buf.remaining()
            < n_children
                .saturating_mul(8)
                .saturating_add(offsets_len.saturating_mul(4))
        {
            return Err(Error::corrupt("hier-for children truncated"));
        }
        let mut children = Vec::with_capacity(n_children);
        for _ in 0..n_children {
            children.push(buf.get_i64_le());
        }
        let mut offsets = Vec::with_capacity(offsets_len);
        for _ in 0..offsets_len {
            offsets.push(buf.get_u32_le());
        }
        let codes = BitPackedVec::read_from(buf)?;
        if ref_keys.windows(2).any(|w| w[0] >= w[1]) {
            return Err(Error::corrupt("hier-for keys not strictly sorted"));
        }
        if offsets[0] != 0
            || *offsets.last().expect("offsets non-empty") as usize != children.len()
            || offsets.windows(2).any(|w| w[0] > w[1])
        {
            return Err(Error::corrupt("hier-for offsets inconsistent"));
        }
        Ok(Self {
            ref_keys,
            children,
            offsets,
            codes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_hierarchical() {
        // 50 parents, 4 children each.
        let reference: Vec<i64> = (0..10_000).map(|i| (i % 50) as i64).collect();
        let target: Vec<i64> = (0..10_000)
            .map(|i| (i % 50) as i64 * 1_000 + (i / 50 % 4) as i64)
            .collect();
        let enc = HierFor::encode(&target, &reference).unwrap();
        assert_eq!(enc.bits(), 2);
        assert!(!enc.is_one_to_one());
        let mut out = Vec::new();
        enc.decode_into(&reference, &mut out).unwrap();
        assert_eq!(out, target);
        assert_eq!(enc.get(7, reference[7]), target[7]);
    }

    #[test]
    fn one_to_one_collapses_to_zero_bits() {
        let reference: Vec<i64> = (0..5_000).map(|i| (i % 100) as i64).collect();
        let target: Vec<i64> = reference.iter().map(|&r| r * 3 + 7).collect();
        let enc = HierFor::encode(&target, &reference).unwrap();
        assert!(enc.is_one_to_one());
        assert_eq!(enc.bits(), 0);
        let mut out = Vec::new();
        enc.decode_into(&reference, &mut out).unwrap();
        assert_eq!(out, target);
    }

    #[test]
    fn mismatch_and_empty() {
        assert!(HierFor::encode(&[1], &[]).is_err());
        let enc = HierFor::encode(&[], &[]).unwrap();
        assert!(enc.is_empty());
    }
}
