//! CLI driver for the torture harness.
//!
//! ```text
//! corra-sim [--seeds N] [--start S] [--seed S] [--quick]
//! CORRA_SIM_SEED=S corra-sim        # replay exactly one seed
//! ```
//!
//! Exit code 0 when every scenario passes; 1 otherwise. Failing seeds are
//! also written to `sim-failures.txt` so CI can archive them.

use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::ExitCode;

use corra_sim::{run_seed, SimOptions, SEED_ENV};

struct Args {
    seeds: u64,
    start: u64,
    pinned: Vec<u64>,
    quick: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seeds: 50,
        start: 0,
        pinned: Vec::new(),
        quick: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut num = |name: &str| -> Result<u64, String> {
            it.next()
                .ok_or_else(|| format!("{name} needs a value"))?
                .parse()
                .map_err(|e| format!("{name}: {e}"))
        };
        match arg.as_str() {
            "--seeds" => args.seeds = num("--seeds")?,
            "--start" => args.start = num("--start")?,
            "--seed" => args.pinned.push(num("--seed")?),
            "--quick" => args.quick = true,
            "--help" | "-h" => {
                return Err(
                    "usage: corra-sim [--seeds N] [--start S] [--seed S]... [--quick]".into(),
                )
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    if let Ok(s) = std::env::var(SEED_ENV) {
        args.pinned
            .push(s.parse().map_err(|e| format!("{SEED_ENV}: {e}"))?);
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let opts = SimOptions { quick: args.quick };
    let seeds: Vec<u64> = if args.pinned.is_empty() {
        (args.start..args.start + args.seeds).collect()
    } else {
        args.pinned.clone()
    };
    let mut failures: Vec<(u64, String)> = Vec::new();
    for &seed in &seeds {
        let result = catch_unwind(AssertUnwindSafe(|| run_seed(seed, &opts)));
        match result {
            Ok(Ok(outcome)) => {
                println!(
                    "seed {:>6} ok  {:<10} rows {:>6} blocks {:>3} ops {:>3} \
                     faults {:>4} hits {:>4} sweep-flips {:>3} crashes {:>2} \
                     segs {:>3} fp {:016x}",
                    outcome.seed,
                    outcome.workload,
                    outcome.rows,
                    outcome.n_blocks,
                    outcome.ops,
                    outcome.faults_injected,
                    outcome.cache_hits,
                    outcome.sweep_flips,
                    outcome.ingest_crash_points,
                    outcome.segments_opened,
                    outcome.fingerprint,
                );
            }
            Ok(Err(failure)) => {
                eprintln!("FAIL {failure}");
                failures.push((seed, failure.message));
            }
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| panic.downcast_ref::<&str>().copied())
                    .unwrap_or("<non-string panic>");
                eprintln!(
                    "FAIL seed {seed} panicked: {msg} (replay: {SEED_ENV}={seed} \
                     cargo run -p corra-sim)"
                );
                failures.push((seed, format!("panic: {msg}")));
            }
        }
    }
    if failures.is_empty() {
        println!("all {} seeds passed", seeds.len());
        return ExitCode::SUCCESS;
    }
    eprintln!("{} of {} seeds FAILED:", failures.len(), seeds.len());
    for (seed, _) in &failures {
        eprintln!("  {SEED_ENV}={seed} cargo run -p corra-sim");
    }
    // Artifact for CI: one failing seed per line.
    if let Ok(mut f) = std::fs::File::create("sim-failures.txt") {
        for (seed, message) in &failures {
            let _ = writeln!(f, "{seed}\t{message}");
        }
        eprintln!("failing seeds written to sim-failures.txt");
    }
    ExitCode::FAILURE
}
