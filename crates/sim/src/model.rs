//! The model table: a plain row-oriented oracle the engine is checked
//! against.
//!
//! Everything here is written in the most boring way possible — rows as
//! `Vec<Cell>`, predicate evaluation row by row, aggregation as a naive
//! fold into a `BTreeMap` — precisely so it shares no code (and therefore
//! no bugs) with the compressed-domain kernels it validates. The only
//! deliberate coupling is the *finalization semantics* (what an empty SUM
//! returns, how AVG divides), which mirror the engine's documented
//! contract.

use std::collections::BTreeMap;

use corra_columnar::block::DataBlock;
use corra_columnar::column::Column;
use corra_columnar::selection::SelectionVector;
use corra_columnar::strings::StringPool;
use corra_core::{
    AggExpr, AggFunc, AggResult, AggValue, CmpOp, GroupKey, JoinExpr, JoinPair, Predicate, RowId,
    TopKExpr, TopKRow,
};

/// One model cell. All engine values are either `i64` or UTF-8.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Cell {
    /// Integer (also dates / timestamps / money).
    Int(i64),
    /// String.
    Str(String),
}

/// A plain, uncompressed, row-oriented copy of the table.
#[derive(Debug, Clone)]
pub struct ModelTable {
    names: Vec<String>,
    rows: Vec<Vec<Cell>>,
    /// `(start_row, len)` per block, in block order.
    block_spans: Vec<(usize, usize)>,
}

/// Naive integer fold with the engine's finalization semantics.
#[derive(Debug, Default, Clone)]
struct IntFold {
    count: u64,
    sum: i128,
    min: Option<i64>,
    max: Option<i64>,
}

impl IntFold {
    fn update(&mut self, v: i64) {
        self.count += 1;
        self.sum += i128::from(v);
        self.min = Some(self.min.map_or(v, |m| m.min(v)));
        self.max = Some(self.max.map_or(v, |m| m.max(v)));
    }

    fn finalize(&self, func: AggFunc) -> AggValue {
        match func {
            AggFunc::Count => AggValue::Count(self.count),
            AggFunc::Sum => AggValue::Sum((self.count > 0).then_some(self.sum)),
            AggFunc::Min => AggValue::Int(self.min),
            AggFunc::Max => AggValue::Int(self.max),
            AggFunc::Avg => {
                AggValue::Avg((self.count > 0).then(|| self.sum as f64 / self.count as f64))
            }
        }
    }
}

/// Naive string fold (COUNT/MIN/MAX only; the engine rejects SUM/AVG on
/// string targets and the scenario generator never produces them).
#[derive(Debug, Default, Clone)]
struct StrFold {
    count: u64,
    min: Option<String>,
    max: Option<String>,
}

impl StrFold {
    fn update(&mut self, v: &str) {
        self.count += 1;
        match &self.min {
            Some(m) if m.as_str() <= v => {}
            _ => self.min = Some(v.to_owned()),
        }
        match &self.max {
            Some(m) if m.as_str() >= v => {}
            _ => self.max = Some(v.to_owned()),
        }
    }

    fn finalize(&self, func: AggFunc) -> AggValue {
        match func {
            AggFunc::Count => AggValue::Count(self.count),
            AggFunc::Min => AggValue::Str(self.min.clone()),
            AggFunc::Max => AggValue::Str(self.max.clone()),
            AggFunc::Sum | AggFunc::Avg => unreachable!("never generated for string targets"),
        }
    }
}

impl ModelTable {
    /// Flattens raw (pre-compression) blocks into one row store.
    pub fn from_blocks(blocks: &[DataBlock]) -> Self {
        assert!(!blocks.is_empty(), "model needs at least one block");
        let names: Vec<String> = blocks[0]
            .schema()
            .fields()
            .iter()
            .map(|f| f.name().to_owned())
            .collect();
        let mut rows = Vec::new();
        let mut block_spans = Vec::new();
        for block in blocks {
            let start = rows.len();
            for i in 0..block.rows() {
                let row: Vec<Cell> = block
                    .columns()
                    .iter()
                    .map(|col| match col {
                        Column::Int64(v) => Cell::Int(v[i]),
                        Column::Utf8(p) => Cell::Str(p.get(i).to_owned()),
                    })
                    .collect();
                rows.push(row);
            }
            block_spans.push((start, block.rows()));
        }
        Self {
            names,
            rows,
            block_spans,
        }
    }

    /// Column names, schema order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Total rows.
    pub fn rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of blocks.
    pub fn n_blocks(&self) -> usize {
        self.block_spans.len()
    }

    /// One cell, global row index.
    pub fn cell(&self, row: usize, column: &str) -> &Cell {
        &self.rows[row][self.col(column)]
    }

    fn col(&self, name: &str) -> usize {
        self.names
            .iter()
            .position(|n| n == name)
            .unwrap_or_else(|| panic!("model has no column {name}"))
    }

    /// Rebuilds one block's column as a [`Column`], for equality against
    /// the engine's projected read.
    pub fn column(&self, block: usize, name: &str) -> Column {
        let c = self.col(name);
        let (start, len) = self.block_spans[block];
        match &self.rows[start][c] {
            Cell::Int(_) => Column::Int64(
                self.rows[start..start + len]
                    .iter()
                    .map(|r| match &r[c] {
                        Cell::Int(v) => *v,
                        Cell::Str(_) => unreachable!("column kinds are uniform"),
                    })
                    .collect(),
            ),
            Cell::Str(_) => {
                let mut pool = StringPool::with_capacity(len, len * 8);
                for r in &self.rows[start..start + len] {
                    match &r[c] {
                        Cell::Str(s) => pool.push(s),
                        Cell::Int(_) => unreachable!("column kinds are uniform"),
                    };
                }
                Column::Utf8(pool)
            }
        }
    }

    fn matches(&self, row: &[Cell], pred: &Predicate) -> bool {
        match pred {
            Predicate::Compare { column, op, value } => {
                let v = match &row[self.col(column)] {
                    Cell::Int(v) => *v,
                    Cell::Str(_) => panic!("int predicate over string column {column}"),
                };
                match op {
                    CmpOp::Eq => v == *value,
                    CmpOp::Ne => v != *value,
                    CmpOp::Lt => v < *value,
                    CmpOp::Le => v <= *value,
                    CmpOp::Gt => v > *value,
                    CmpOp::Ge => v >= *value,
                }
            }
            Predicate::Between { column, lo, hi } => match &row[self.col(column)] {
                Cell::Int(v) => (lo..=hi).contains(&v),
                Cell::Str(_) => panic!("int predicate over string column {column}"),
            },
            Predicate::StrEq {
                column,
                value,
                negate,
            } => match &row[self.col(column)] {
                Cell::Str(s) => (s == value) != *negate,
                Cell::Int(_) => panic!("string predicate over int column {column}"),
            },
            Predicate::And(children) => children.iter().all(|p| self.matches(row, p)),
            Predicate::Or(children) => children.iter().any(|p| self.matches(row, p)),
            Predicate::Not(child) => !self.matches(row, child),
        }
    }

    /// Per-block selection vectors of matching rows (block-local indices).
    pub fn scan(&self, pred: &Predicate) -> Vec<SelectionVector> {
        self.block_spans
            .iter()
            .map(|&(start, len)| {
                SelectionVector::new(
                    (0..len)
                        .filter(|&i| self.matches(&self.rows[start + i], pred))
                        .map(|i| i as u32)
                        .collect(),
                )
            })
            .collect()
    }

    /// Naive row-by-row aggregation with the engine's result shape.
    pub fn aggregate(&self, expr: &AggExpr) -> AggResult {
        let keep: Vec<bool> = match expr.filter() {
            None => vec![true; self.rows.len()],
            Some(p) => self.rows.iter().map(|r| self.matches(r, p)).collect(),
        };
        let target = expr.column().map(|c| self.col(c));
        let string_target = matches!(
            target.map(|c| &self.rows.first().expect("non-empty")[c]),
            Some(Cell::Str(_))
        );
        match expr.group_by() {
            None => {
                if string_target {
                    let mut s = StrFold::default();
                    for (r, &k) in self.rows.iter().zip(&keep) {
                        if k {
                            match &r[target.expect("string target")] {
                                Cell::Str(v) => s.update(v),
                                Cell::Int(_) => unreachable!(),
                            }
                        }
                    }
                    AggResult::Scalar(s.finalize(expr.func()))
                } else {
                    let mut s = IntFold::default();
                    for (r, &k) in self.rows.iter().zip(&keep) {
                        if !k {
                            continue;
                        }
                        match target.map(|c| &r[c]) {
                            Some(Cell::Int(v)) => s.update(*v),
                            Some(Cell::Str(_)) => unreachable!(),
                            None => s.count += 1,
                        }
                    }
                    AggResult::Scalar(s.finalize(expr.func()))
                }
            }
            Some(group) => {
                let g = self.col(group);
                let key_of = |r: &[Cell]| match &r[g] {
                    Cell::Int(v) => GroupKey::Int(*v),
                    Cell::Str(s) => GroupKey::Str(s.clone()),
                };
                if string_target {
                    let mut groups: BTreeMap<GroupKey, StrFold> = BTreeMap::new();
                    for (r, &k) in self.rows.iter().zip(&keep) {
                        if k {
                            match &r[target.expect("string target")] {
                                Cell::Str(v) => groups.entry(key_of(r)).or_default().update(v),
                                Cell::Int(_) => unreachable!(),
                            }
                        }
                    }
                    AggResult::Grouped(
                        groups
                            .into_iter()
                            .map(|(k, s)| (k, s.finalize(expr.func())))
                            .collect(),
                    )
                } else {
                    let mut groups: BTreeMap<GroupKey, IntFold> = BTreeMap::new();
                    for (r, &k) in self.rows.iter().zip(&keep) {
                        if !k {
                            continue;
                        }
                        let s = groups.entry(key_of(r)).or_default();
                        match target.map(|c| &r[c]) {
                            Some(Cell::Int(v)) => s.update(*v),
                            Some(Cell::Str(_)) => unreachable!(),
                            None => s.count += 1,
                        }
                    }
                    AggResult::Grouped(
                        groups
                            .into_iter()
                            .map(|(k, s)| (k, s.finalize(expr.func())))
                            .collect(),
                    )
                }
            }
        }
    }

    /// Naive TOP-K: filter row by row, stable-sort by value with the
    /// engine's documented `(value, block, row)` tie-break, take `k`.
    pub fn top_k(&self, expr: &TopKExpr) -> Vec<TopKRow> {
        let c = self.col(expr.column());
        let mut out = Vec::new();
        for (b, &(start, len)) in self.block_spans.iter().enumerate() {
            for r in 0..len {
                let row = &self.rows[start + r];
                if expr.filter().is_some_and(|p| !self.matches(row, p)) {
                    continue;
                }
                let Cell::Int(v) = row[c] else {
                    panic!("top-k over string column {}", expr.column())
                };
                out.push(TopKRow {
                    value: v,
                    block: b as u32,
                    row: r as u32,
                });
            }
        }
        out.sort_by(|a, b| {
            let ord = if expr.descending() {
                b.value.cmp(&a.value)
            } else {
                a.value.cmp(&b.value)
            };
            ord.then(a.block.cmp(&b.block)).then(a.row.cmp(&b.row))
        });
        out.truncate(expr.k().min(out.len()));
        out
    }

    /// Naive hash-free equi-join with `self` as the build side: probe rows
    /// in global order, each matched against every equal build key in
    /// build insertion order — the engine's documented pair order.
    pub fn join(&self, expr: &JoinExpr, probe: &ModelTable) -> Vec<JoinPair> {
        let bc = self.col(expr.build_key());
        let pc = probe.col(expr.probe_key());
        let mut by_key: BTreeMap<&Cell, Vec<RowId>> = BTreeMap::new();
        for (b, &(start, len)) in self.block_spans.iter().enumerate() {
            for r in 0..len {
                by_key
                    .entry(&self.rows[start + r][bc])
                    .or_default()
                    .push(RowId {
                        block: b as u32,
                        row: r as u32,
                    });
            }
        }
        let mut pairs = Vec::new();
        for (b, &(start, len)) in probe.block_spans.iter().enumerate() {
            for r in 0..len {
                if let Some(builds) = by_key.get(&probe.rows[start + r][pc]) {
                    for &build in builds {
                        pairs.push(JoinPair {
                            build,
                            probe: RowId {
                                block: b as u32,
                                row: r as u32,
                            },
                        });
                    }
                }
            }
        }
        pairs
    }

    /// Pair count of [`join`](Self::join) without materializing the pairs
    /// — used to cap scheduled join ops to a sane result size.
    pub fn join_count(&self, expr: &JoinExpr, probe: &ModelTable) -> usize {
        let bc = self.col(expr.build_key());
        let pc = probe.col(expr.probe_key());
        let mut counts: BTreeMap<&Cell, usize> = BTreeMap::new();
        for row in &self.rows {
            *counts.entry(&row[bc]).or_default() += 1;
        }
        probe
            .rows
            .iter()
            .map(|row| counts.get(&row[pc]).copied().unwrap_or(0))
            .sum()
    }

    /// Whether the named column holds strings.
    pub fn is_string(&self, name: &str) -> bool {
        matches!(
            self.rows.first().map(|r| &r[self.col(name)]),
            Some(Cell::Str(_))
        )
    }

    /// A value sample for predicate generation: the named column's value at
    /// `row` (global index).
    pub fn sample_int(&self, row: usize, name: &str) -> i64 {
        match self.cell(row, name) {
            Cell::Int(v) => *v,
            Cell::Str(_) => panic!("sample_int over string column {name}"),
        }
    }

    /// String sample for predicate generation.
    pub fn sample_str(&self, row: usize, name: &str) -> &str {
        match self.cell(row, name) {
            Cell::Str(s) => s,
            Cell::Int(_) => panic!("sample_str over int column {name}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corra_columnar::column::DataType;
    use corra_columnar::schema::{Field, Schema};

    fn two_blocks() -> Vec<DataBlock> {
        let schema = Schema::new(vec![
            Field::new("v", DataType::Int64),
            Field::new("tag", DataType::Utf8),
        ])
        .unwrap();
        [0i64, 10]
            .iter()
            .map(|&salt| {
                DataBlock::new(
                    schema.clone(),
                    vec![
                        Column::Int64((0..4).map(|i| salt + i).collect()),
                        Column::Utf8((0..4).map(|i| if i % 2 == 0 { "a" } else { "b" }).collect()),
                    ],
                )
                .unwrap()
            })
            .collect()
    }

    #[test]
    fn scan_matches_by_hand() {
        let m = ModelTable::from_blocks(&two_blocks());
        let sels = m.scan(&Predicate::ge("v", 3));
        assert_eq!(sels[0].positions(), &[3]);
        assert_eq!(sels[1].positions(), &[0, 1, 2, 3]);
        let sels = m.scan(&Predicate::and(vec![
            Predicate::str_eq("tag", "a"),
            Predicate::lt("v", 11),
        ]));
        assert_eq!(sels[0].positions(), &[0, 2]);
        assert_eq!(sels[1].positions(), &[0]);
    }

    #[test]
    fn aggregate_matches_by_hand() {
        let m = ModelTable::from_blocks(&two_blocks());
        assert_eq!(
            m.aggregate(&AggExpr::sum("v")),
            AggResult::Scalar(AggValue::Sum(Some(1 + 2 + 3 + 10 + 11 + 12 + 13)))
        );
        assert_eq!(
            m.aggregate(&AggExpr::count().with_filter(Predicate::str_eq("tag", "b"))),
            AggResult::Scalar(AggValue::Count(4))
        );
        let grouped = m.aggregate(&AggExpr::max("v").with_group_by("tag"));
        assert_eq!(
            grouped,
            AggResult::Grouped(vec![
                (GroupKey::Str("a".into()), AggValue::Int(Some(12))),
                (GroupKey::Str("b".into()), AggValue::Int(Some(13))),
            ])
        );
        // Empty-filter SUM is NULL, not zero — the engine's contract.
        assert_eq!(
            m.aggregate(&AggExpr::sum("v").with_filter(Predicate::lt("v", -1))),
            AggResult::Scalar(AggValue::Sum(None))
        );
    }

    #[test]
    fn column_rebuild_round_trips() {
        let blocks = two_blocks();
        let m = ModelTable::from_blocks(&blocks);
        for (b, raw) in blocks.iter().enumerate() {
            for name in ["v", "tag"] {
                assert_eq!(&m.column(b, name), raw.column(name).unwrap());
            }
        }
    }
}
