//! # corra-sim
//!
//! Deterministic simulation & fault-injection torture harness for the
//! Corra engine, with a model-table oracle and replayable seeds.
//!
//! One `u64` seed fully determines a scenario: which workload is
//! generated (the four paper datasets, the streaming time-series log, or
//! a codec-dense synthetic schema), how it is blocked and compressed,
//! which reads / scans / aggregates run against it, and which faults are
//! injected underneath the store reader. Every result is validated
//! against [`ModelTable`] — a plain `Vec`-of-rows copy of the data that
//! shares no code with the engine — and every failure carries its seed:
//!
//! ```text
//! CORRA_SIM_SEED=12345 cargo run -p corra-sim
//! ```
//!
//! replays the exact failing scenario, bit for bit.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod model;
pub mod scenario;

pub use model::{Cell, ModelTable};
pub use scenario::{run_seed, Scenario, ScenarioOutcome, SimFailure, SimOptions, SEED_ENV};
