//! Seeded scenario driver: one seed fully determines a workload, a block
//! layout, a compression config, an operation schedule, and a fault
//! schedule — so every failure replays exactly from its seed.
//!
//! A scenario runs in three passes:
//!
//! 1. **Clean differential pass** — every operation runs through the store
//!    reader, the in-memory engine (serial *and* parallel), and the plain
//!    [`ModelTable`] oracle; all four must agree exactly.
//! 2. **Cache pass** — the schedule runs twice more through a reader
//!    wrapped in a [`ShardedCache`] (cold fills, then warm hits): both
//!    passes must be byte-identical to the uncached oracle, and the warm
//!    pass must read zero backend bytes.
//! 3. **Fault passes** — the same table is re-read through a
//!    [`FaultyBackend`]. Benign plans (short reads only) must be fully
//!    transparent; hostile plans (bit flips, transient errors, torn tails)
//!    must surface as `Err` or return the exact model answer — never panic,
//!    never silently wrong data. Hostile episodes also run cache-wrapped:
//!    a bit-flipped fill must surface as `Err`, never become a poisoned
//!    cache entry served silently on a later repeat.
//! 4. **Corruption sweep** — the shared [`corra_core::torture`] sweep runs
//!    a seeded slice of single-bit flips over the file image.

use std::fmt;
use std::sync::Arc;

use corra_columnar::block::{DataBlock, Table};
use corra_columnar::column::{Column, DataType};
use corra_columnar::schema::{Field, Schema};
use corra_columnar::selection::SelectionVector;
use corra_core::cache::{CacheConfig, ShardedCache};
use corra_core::ingest::{IngestConfig, IngestTable};
use corra_core::store::{SegmentedTable, TableReader, TableWriter};
use corra_core::vfs::{SimVfs, Vfs};
use corra_core::{
    aggregate_blocks, aggregate_blocks_parallel, checksum64, compact, corruption_sweep,
    hash_join_blocks, hash_join_blocks_parallel, scan_blocks, top_k_blocks, top_k_blocks_parallel,
    AggExpr, AggFunc, AggResult, ColumnPlan, CompactionConfig, CompressedBlock, CompressionConfig,
    FaultPlan, FaultyBackend, JoinExpr, JoinPair, MemBackend, Predicate, SweepOptions, TopKExpr,
    TopKRow,
};
use corra_datagen::{
    taxi, DmvParams, DmvTable, LineitemDates, MessageParams, MessageTable, TaxiParams, TaxiTable,
    TimeseriesParams, TimeseriesTable,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::model::ModelTable;

/// Environment variable that pins the harness to a single replay seed.
pub const SEED_ENV: &str = "CORRA_SIM_SEED";

/// Harness knobs.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimOptions {
    /// Smaller tables, fewer operations, thinner sweep — for CI smoke.
    pub quick: bool,
}

/// A scenario failure: what went wrong, and the seed that replays it.
#[derive(Debug, Clone)]
pub struct SimFailure {
    /// The scenario seed.
    pub seed: u64,
    /// Human-readable mismatch description.
    pub message: String,
}

impl fmt::Display for SimFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "seed {} failed: {} (replay: {}={} cargo run -p corra-sim)",
            self.seed, self.message, SEED_ENV, self.seed
        )
    }
}

impl std::error::Error for SimFailure {}

/// Summary of a passed scenario.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// The scenario seed.
    pub seed: u64,
    /// Workload label.
    pub workload: &'static str,
    /// Total rows generated.
    pub rows: usize,
    /// Blocks written to the store image.
    pub n_blocks: usize,
    /// Operations in the schedule.
    pub ops: usize,
    /// Chained checksum over every clean-pass result: two runs of the same
    /// seed must produce the same fingerprint bit for bit.
    pub fingerprint: u64,
    /// Faults injected across the hostile episodes.
    pub faults_injected: u64,
    /// Cache hits landed by the warm half of the cache pass.
    pub cache_hits: u64,
    /// Bit flips exercised by the corruption sweep.
    pub sweep_flips: usize,
    /// Crash points exercised by the ingest pass.
    pub ingest_crash_points: usize,
    /// Segments opened by the ingest pass's multi-segment schedule replay.
    pub segments_opened: u64,
}

/// One scheduled operation.
#[derive(Debug, Clone)]
enum Op {
    ReadBlock(usize),
    ReadColumn(usize, String),
    Scan(Predicate, usize),
    Aggregate(AggExpr, usize),
    TopK(TopKExpr, usize),
    Join(JoinExpr, usize),
}

/// The oracle's expected result for one operation.
///
/// Joins are fingerprinted as `(pair count, digest)` rather than the full
/// pair list: a self-join on a low-cardinality dict key can produce tens of
/// thousands of pairs, and a multi-megabyte `Debug` string per op would
/// dominate the fingerprint chain for no extra discriminating power.
#[derive(Debug, Clone, PartialEq)]
enum Expected {
    Block(CompressedBlock),
    Column(Column),
    Scan(Vec<SelectionVector>),
    Agg(AggResult),
    TopK(Vec<TopKRow>),
    Join(usize, u64),
}

/// Order-sensitive FNV-style fold over every pair's four coordinates, so a
/// join result collapses to a compact digest without losing pair order.
fn digest_pairs(pairs: &[JoinPair]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for p in pairs {
        for v in [p.build.block, p.build.row, p.probe.block, p.probe.row] {
            h = (h ^ u64::from(v)).wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

const WORKLOADS: [&str; 6] = ["tpch", "dmv", "ldbc", "taxi", "timeseries", "synthetic"];

/// A fully-built scenario: store image, oracle, and operation schedule.
pub struct Scenario {
    /// The generating seed.
    pub seed: u64,
    /// Workload label.
    pub workload: &'static str,
    /// Rows per block used when splitting.
    pub block_rows: usize,
    /// Compressed blocks (the in-memory engine's input).
    pub blocks: Vec<CompressedBlock>,
    /// Serialized store image (footer v3, checksummed).
    pub bytes: Vec<u8>,
    /// The row-oriented oracle.
    pub model: ModelTable,
    raw_blocks: Vec<DataBlock>,
    compression: CompressionConfig,
    ops: Vec<Op>,
    expected: Vec<Expected>,
    quick: bool,
}

impl Scenario {
    /// Deterministically builds the scenario for `seed`.
    ///
    /// The workload is `seed % 6` (so a small seed corpus can cover all
    /// six); everything else — table shape, block size, operation and
    /// fault schedules — comes from an `StdRng` seeded with `seed`.
    pub fn build(seed: u64, opts: &SimOptions) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let workload = WORKLOADS[(seed % WORKLOADS.len() as u64) as usize];
        let rows = if opts.quick {
            rng.gen_range(1_200..3_000)
        } else {
            rng.gen_range(5_000..14_000)
        };
        let (table, cfg, groupable) = build_workload(workload, rows, &mut rng);
        let block_rows = *[97, 256, 511, 1_024, 2_048]
            .iter()
            .filter(|&&b| b < rows)
            .nth(rng.gen_range(0..4))
            .expect("row floor exceeds every candidate block size");
        let raw_blocks: Vec<DataBlock> = table.into_blocks(block_rows);
        let blocks: Vec<CompressedBlock> = raw_blocks
            .iter()
            .map(|b| CompressedBlock::compress(b, &cfg).expect("workload config compresses"))
            .collect();
        let mut writer = TableWriter::new(Vec::new()).expect("vec sink");
        for b in &blocks {
            writer.write_block(b).expect("write block");
        }
        let bytes = writer.finish().expect("finish table");
        let model = ModelTable::from_blocks(&raw_blocks);
        let n_ops = if opts.quick { 24 } else { 64 };
        let ops = schedule_ops(&mut rng, &model, &groupable, n_ops);
        let expected = ops.iter().map(|op| expect(&model, &blocks, op)).collect();
        Self {
            seed,
            workload,
            block_rows,
            blocks,
            bytes,
            model,
            raw_blocks,
            compression: cfg,
            ops,
            expected,
            quick: opts.quick,
        }
    }

    /// Number of scheduled operations.
    pub fn ops(&self) -> usize {
        self.ops.len()
    }

    /// `(TOP-K ops, join ops)` in the schedule — exposed so the replay
    /// corpus can assert the operator pipeline stays exercised rather than
    /// silently scheduled away.
    pub fn operator_ops(&self) -> (usize, usize) {
        let topk = self
            .ops
            .iter()
            .filter(|o| matches!(o, Op::TopK(..)))
            .count();
        let join = self
            .ops
            .iter()
            .filter(|o| matches!(o, Op::Join(..)))
            .count();
        (topk, join)
    }

    fn fail(&self, message: String) -> SimFailure {
        SimFailure {
            seed: self.seed,
            message,
        }
    }

    /// Clean differential pass: store reader + in-memory serial + parallel
    /// vs the model, for every operation. Returns the result fingerprint.
    pub fn verify_clean(&self) -> Result<u64, SimFailure> {
        let reader = TableReader::from_bytes(self.bytes.clone())
            .map_err(|e| self.fail(format!("clean open failed: {e}")))?;
        let mut fp = checksum64(b"corra-sim");
        for (i, (op, want)) in self.ops.iter().zip(&self.expected).enumerate() {
            let got = run_op(&reader, op).map_err(|e| self.fail(format!("op {i} {op:?}: {e}")))?;
            if &got != want {
                return Err(self.fail(format!(
                    "op {i} {op:?}: engine disagrees with model\n  got  {got:?}\n  want {want:?}"
                )));
            }
            // The in-memory engine must agree with the store path too.
            match op {
                Op::Scan(pred, _) => {
                    let (sels, _) = scan_blocks(&self.blocks, pred)
                        .map_err(|e| self.fail(format!("op {i} in-memory scan: {e}")))?;
                    if Expected::Scan(sels) != *want {
                        return Err(self.fail(format!("op {i} {op:?}: in-memory scan diverged")));
                    }
                }
                Op::Aggregate(expr, threads) => {
                    let (agg, _) = aggregate_blocks(&self.blocks, expr)
                        .map_err(|e| self.fail(format!("op {i} in-memory aggregate: {e}")))?;
                    let (par, _) = aggregate_blocks_parallel(&self.blocks, expr, *threads)
                        .map_err(|e| self.fail(format!("op {i} parallel aggregate: {e}")))?;
                    if Expected::Agg(agg) != *want || Expected::Agg(par) != *want {
                        return Err(self.fail(format!("op {i} {op:?}: in-memory agg diverged")));
                    }
                }
                Op::TopK(expr, threads) => {
                    let (rows, _) = top_k_blocks(&self.blocks, expr)
                        .map_err(|e| self.fail(format!("op {i} in-memory top-k: {e}")))?;
                    let (par, _) = top_k_blocks_parallel(&self.blocks, expr, *threads)
                        .map_err(|e| self.fail(format!("op {i} parallel top-k: {e}")))?;
                    if Expected::TopK(rows) != *want || Expected::TopK(par) != *want {
                        return Err(self.fail(format!("op {i} {op:?}: in-memory top-k diverged")));
                    }
                }
                Op::Join(expr, threads) => {
                    let (pairs, _) = hash_join_blocks(&self.blocks, &self.blocks, expr)
                        .map_err(|e| self.fail(format!("op {i} in-memory join: {e}")))?;
                    let (par, _) =
                        hash_join_blocks_parallel(&self.blocks, &self.blocks, expr, *threads)
                            .map_err(|e| self.fail(format!("op {i} parallel join: {e}")))?;
                    let serial = Expected::Join(pairs.len(), digest_pairs(&pairs));
                    let parallel = Expected::Join(par.len(), digest_pairs(&par));
                    if serial != *want || parallel != *want {
                        return Err(self.fail(format!("op {i} {op:?}: in-memory join diverged")));
                    }
                }
                Op::ReadBlock(_) | Op::ReadColumn(..) => {}
            }
            fp = checksum64(format!("{fp:016x}|{got:?}").as_bytes());
        }
        Ok(fp)
    }

    /// Cache pass: the whole schedule through a cache-wrapped reader,
    /// twice per budget. An ample budget must make the warm repeat
    /// I/O-free; a tiny budget forces eviction churn mid-schedule. Both
    /// must stay byte-identical to the uncached oracle throughout.
    /// Returns the warm ample-budget pass's cache hits.
    pub fn verify_cached(&self) -> Result<u64, SimFailure> {
        let mut warm_hits = 0u64;
        // Tiny budget: a fraction of the file, single-digit shards, so
        // entries keep shoving each other out between (and inside) ops.
        let tiny = (self.bytes.len() as u64 / 4).max(512);
        for (label, budget) in [("ample", 64 << 20), ("tiny", tiny)] {
            let cache = Arc::new(ShardedCache::new(CacheConfig {
                byte_budget: budget,
                shards: 4,
            }));
            let reader = TableReader::from_bytes(self.bytes.clone())
                .map_err(|e| self.fail(format!("cached open failed: {e}")))?
                .with_cache(Arc::clone(&cache));
            for pass in ["cold", "warm"] {
                let before = reader.bytes_read();
                let mut hits = 0u64;
                for (i, (op, want)) in self.ops.iter().zip(&self.expected).enumerate() {
                    let (got, stats) = run_op_counted(&reader, op)
                        .map_err(|e| self.fail(format!("{label} {pass} op {i} {op:?}: {e}")))?;
                    if &got != want {
                        return Err(self.fail(format!(
                            "{label} {pass} op {i} {op:?}: cached result diverged from oracle"
                        )));
                    }
                    hits += stats;
                }
                if label == "ample" && pass == "warm" {
                    let read = reader.bytes_read() - before;
                    if read != 0 {
                        return Err(self.fail(format!(
                            "warm ample-budget pass read {read} backend bytes, expected 0"
                        )));
                    }
                    warm_hits = hits;
                }
            }
            let stats = cache.stats();
            if stats.bytes_cached > cache.capacity() {
                return Err(self.fail(format!("{label} cache overran its budget: {stats:?}")));
            }
        }
        Ok(warm_hits)
    }

    /// Benign fault pass: a backend that constantly returns short reads
    /// must be fully transparent.
    pub fn verify_benign_faults(&self) -> Result<u64, SimFailure> {
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(0xBE216E));
        let plan = FaultPlan::none(rng.gen()).with_short_reads(rng.gen_range(0.4..0.95));
        debug_assert!(plan.is_benign());
        let backend = FaultyBackend::new(MemBackend::new(self.bytes.clone()), plan);
        let reader = TableReader::from_backend(Box::new(backend))
            .map_err(|e| self.fail(format!("benign-fault open failed: {e}")))?;
        let mut healed = 0u64;
        for (i, (op, want)) in self.ops.iter().zip(&self.expected).enumerate() {
            let got = run_op(&reader, op)
                .map_err(|e| self.fail(format!("benign op {i} {op:?} errored: {e}")))?;
            if &got != want {
                return Err(self.fail(format!(
                    "benign op {i} {op:?}: short reads corrupted a result"
                )));
            }
            healed += 1;
        }
        Ok(healed)
    }

    /// Hostile fault pass: bit flips + transient errors. Every operation
    /// must error or return the exact model answer; the whole episode must
    /// be deterministic per seed. Returns total faults injected.
    pub fn verify_hostile_faults(&self) -> Result<u64, SimFailure> {
        let episodes = if self.quick { 2 } else { 4 };
        let mut injected = 0u64;
        for episode in 0..episodes {
            let fault_seed = self
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(episode);
            let run = |bytes: &[u8]| -> Result<(Vec<String>, u64), SimFailure> {
                let plan = FaultPlan::none(fault_seed)
                    .with_bit_flips(0.04 + 0.03 * episode as f64)
                    .with_transient_errors(0.02 * episode as f64);
                let backend =
                    std::sync::Arc::new(FaultyBackend::new(MemBackend::new(bytes.to_vec()), plan));
                let stats_handle = std::sync::Arc::clone(&backend);
                let mut log = Vec::with_capacity(self.ops.len() + 1);
                match TableReader::from_backend(Box::new(backend)) {
                    Err(e) => log.push(format!("open err: {e}")),
                    Ok(reader) => {
                        for (i, (op, want)) in self.ops.iter().zip(&self.expected).enumerate() {
                            // Serial drivers only: parallel scans interleave
                            // backend reads nondeterministically, which
                            // would scramble the seeded fault schedule and
                            // break outcome-for-outcome replay.
                            match run_op_serial(&reader, op) {
                                Err(e) => log.push(format!("op {i} err: {e}")),
                                Ok(got) => {
                                    if &got != want {
                                        return Err(self.fail(format!(
                                            "hostile episode {episode} op {i} {op:?}: \
                                             silently wrong data served"
                                        )));
                                    }
                                    log.push(format!("op {i} ok"));
                                }
                            }
                        }
                    }
                }
                Ok((log, stats_handle.stats().total()))
            };
            let (first, faults) = run(&self.bytes)?;
            let (second, _) = run(&self.bytes)?;
            if first != second {
                return Err(self.fail(format!(
                    "hostile episode {episode}: fault schedule not deterministic"
                )));
            }
            injected += faults;
        }
        // Hostile faults with a cache in the path: a bit-flipped fill must
        // surface as `Err` and never be admitted — so when the schedule is
        // replayed through the *same* cached reader, every success must
        // still match the oracle (a poisoned entry would be served here)
        // and every entry that did land in the cache must have passed
        // verification first.
        for episode in 0..episodes {
            let fault_seed = self
                .seed
                .wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
                .wrapping_add(episode);
            let plan = FaultPlan::none(fault_seed)
                .with_bit_flips(0.05 + 0.04 * episode as f64)
                .with_transient_errors(0.02 * episode as f64);
            let backend = FaultyBackend::new(MemBackend::new(self.bytes.clone()), plan);
            let cache = Arc::new(ShardedCache::new(CacheConfig::with_budget(64 << 20)));
            let Ok(reader) = TableReader::from_backend(Box::new(backend)) else {
                continue; // open itself was flipped — nothing cached, done
            };
            let reader = reader.with_cache(Arc::clone(&cache));
            for round in 0..2 {
                for (i, (op, want)) in self.ops.iter().zip(&self.expected).enumerate() {
                    match run_op_serial(&reader, op) {
                        Err(_) => {}
                        Ok(got) => {
                            if &got != want {
                                return Err(self.fail(format!(
                                    "hostile cached episode {episode} round {round} op {i} \
                                     {op:?}: poisoned or wrong data served"
                                )));
                            }
                        }
                    }
                }
            }
        }

        // Torn tails must always fail at open: the trailer is unreadable.
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x7042);
        for _ in 0..3 {
            let cut = rng.gen_range(1..self.bytes.len().min(512)) as u64;
            let plan = FaultPlan::none(rng.gen()).with_truncation(self.bytes.len() as u64 - cut);
            let backend = FaultyBackend::new(MemBackend::new(self.bytes.clone()), plan);
            if TableReader::from_backend(Box::new(backend)).is_ok() {
                return Err(self.fail(format!("torn tail (cut {cut}) opened successfully")));
            }
        }
        Ok(injected)
    }

    /// Hostile fault pass under **parallel** drivers: positional fault
    /// schedules (`FaultPlan::with_positional_schedule`) make every read's
    /// verdict a pure function of `(seed, offset, len)`, so morsel-parallel
    /// scans and parallel aggregation can run under fire and still replay.
    /// Every operation must error or return the exact model answer, and two
    /// runs of an episode must produce the same per-op ok/err status log.
    /// (Status only: which thread trips a faulting read first — and thus
    /// the error *text* — legitimately varies with interleaving; whether
    /// the op faults at all does not, because a fault is the only thing
    /// that aborts a driver early.) Returns total faults injected.
    pub fn verify_hostile_parallel_faults(&self) -> Result<u64, SimFailure> {
        let episodes = if self.quick { 2 } else { 4 };
        let mut injected = 0u64;
        for episode in 0..episodes {
            let fault_seed = self
                .seed
                .wrapping_mul(0xA24B_AED4_963E_E407)
                .wrapping_add(episode);
            let run = || -> Result<(Vec<String>, u64), SimFailure> {
                let plan = FaultPlan::none(fault_seed)
                    .with_bit_flips(0.03 + 0.03 * episode as f64)
                    .with_transient_errors(0.015 * episode as f64)
                    .with_positional_schedule();
                let backend = std::sync::Arc::new(FaultyBackend::new(
                    MemBackend::new(self.bytes.clone()),
                    plan,
                ));
                let stats_handle = std::sync::Arc::clone(&backend);
                let mut log = Vec::with_capacity(self.ops.len() + 1);
                match TableReader::from_backend(Box::new(backend)) {
                    Err(_) => log.push("open err".to_owned()),
                    Ok(reader) => {
                        for (i, (op, want)) in self.ops.iter().zip(&self.expected).enumerate() {
                            match run_op_parallel(&reader, op) {
                                Err(_) => log.push(format!("op {i} err")),
                                Ok(got) => {
                                    if &got != want {
                                        return Err(self.fail(format!(
                                            "hostile parallel episode {episode} op {i} {op:?}: \
                                             silently wrong data served"
                                        )));
                                    }
                                    log.push(format!("op {i} ok"));
                                }
                            }
                        }
                    }
                }
                Ok((log, stats_handle.stats().total()))
            };
            let (first, faults) = run()?;
            let (second, _) = run()?;
            if first != second {
                return Err(self.fail(format!(
                    "hostile parallel episode {episode}: positional fault schedule \
                     not deterministic across runs"
                )));
            }
            injected += faults;
        }
        Ok(injected)
    }

    /// Seeded slice of the shared single-bit-flip corruption sweep.
    pub fn verify_sweep(&self) -> usize {
        let budget = if self.quick { 16 } else { 64 };
        let opts = SweepOptions {
            truncation: false, // torn tails covered per-episode above
            ..SweepOptions::quick(self.bytes.len(), budget)
        };
        corruption_sweep(&self.bytes, &opts).flips_tested
    }

    /// Ingest pass: the scenario's raw blocks are appended group-by-group
    /// into a crash-consistent [`IngestTable`] over [`SimVfs`], the full
    /// operation schedule replays against the multi-segment reader (every
    /// result must match the single-file oracle bit for bit), the table is
    /// compacted and re-verified row-for-row against the model, and a
    /// seeded sample of crash points re-runs the build, asserting recovery
    /// to exactly an acknowledged group boundary. Returns
    /// `(crash points exercised, segments opened by the schedule replay)`.
    pub fn verify_ingest(&self) -> Result<(usize, u64), SimFailure> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x16E5_7A55);
        let groups = self.append_groups(&mut rng);

        // Clean build + schedule replay over the multi-segment reader.
        let sim = SimVfs::new(self.seed);
        let (table, _) = self
            .run_ingest_workload(Arc::new(sim), &groups, false)
            .map_err(|e| self.fail(format!("ingest build failed: {e}")))?;
        let table = table.expect("fault-free build always yields a table");
        let reader = table
            .reader()
            .map_err(|e| self.fail(format!("ingest reader failed: {e}")))?;
        if reader.segments().len() < groups.len() {
            return Err(self.fail(format!(
                "{} appends produced {} segments",
                groups.len(),
                reader.segments().len()
            )));
        }
        let mut segments_opened = 0u64;
        for (i, (op, want)) in self.ops.iter().zip(&self.expected).enumerate() {
            let (got, opened) = run_op_segmented(&reader, op)
                .map_err(|e| self.fail(format!("segmented op {i} {op:?}: {e}")))?;
            if &got != want {
                return Err(self.fail(format!(
                    "segmented op {i} {op:?}: multi-segment reader diverged from oracle"
                )));
            }
            segments_opened += opened;
        }

        // Compact and re-verify row-for-row (block boundaries change, so
        // the comparison is over concatenated columns, not per block).
        let mut table = table;
        let result = compact(&mut table, &self.compaction_config())
            .map_err(|e| self.fail(format!("compaction failed: {e}")))?;
        if groups.len() >= 2 && !result.compacted {
            return Err(self.fail(format!(
                "compaction skipped a {}-segment table",
                result.segments_before
            )));
        }
        let compacted = table
            .reader()
            .map_err(|e| self.fail(format!("post-compaction reader failed: {e}")))?;
        self.check_rows_equal_model_prefix(&compacted, self.model.rows(), "post-compaction")?;

        // Crash sample: rerun the build + compaction with an op-indexed
        // crash point, apply the crash, recover, and hold recovery to the
        // ack boundary: every acknowledged group present, at most the one
        // in-flight group extra, rows byte-equal to the model prefix.
        let probe = SimVfs::new(self.seed ^ 0xC4A5);
        self.run_ingest_workload(Arc::new(probe.clone()), &groups, true)
            .map_err(|e| self.fail(format!("crash-probe build failed: {e}")))?;
        let total_ops = probe.op_count();
        let n_points = if self.quick { 4 } else { 10 };
        let mut exercised = 0usize;
        for _ in 0..n_points {
            let k = rng.gen_range(0..total_ops);
            let sim = SimVfs::new(self.seed ^ 0xC4A5);
            sim.crash_after(k);
            let (_, acked) = self
                .run_ingest_workload(Arc::new(sim.clone()), &groups, true)
                .map_err(|e| self.fail(format!("crash run {k} failed cleanly: {e}")))?;
            if !sim.has_crashed() {
                return Err(self.fail(format!("crash point {k} never tripped")));
            }
            sim.apply_crash();
            let acked_rows: usize = groups[..acked].iter().map(|g| self.group_rows(g)).sum();
            let with_inflight = if acked < groups.len() {
                acked_rows + self.group_rows(&groups[acked])
            } else {
                acked_rows
            };
            match IngestTable::open(Arc::new(sim.clone()), self.ingest_config()) {
                Err(_) => {
                    if acked > 0 {
                        return Err(self.fail(format!(
                            "crash point {k}: recovery failed after {acked} acked appends"
                        )));
                    }
                }
                Ok(recovered) => {
                    let rows = recovered.rows() as usize;
                    if rows != acked_rows && rows != with_inflight {
                        return Err(self.fail(format!(
                            "crash point {k}: recovered {rows} rows, expected {acked_rows} \
                             (acked) or {with_inflight} (acked + whole in-flight append)"
                        )));
                    }
                    let reader = recovered
                        .reader()
                        .map_err(|e| self.fail(format!("crash point {k}: reopen read: {e}")))?;
                    self.check_rows_equal_model_prefix(&reader, rows, &format!("crash point {k}"))?;
                }
            }
            exercised += 1;
        }
        Ok((exercised, segments_opened))
    }

    fn ingest_config(&self) -> IngestConfig {
        IngestConfig {
            block_rows: self.block_rows,
            threads: 1,
            compression: self.compression.clone(),
            keep_manifests: 2,
        }
    }

    fn compaction_config(&self) -> CompactionConfig {
        CompactionConfig {
            block_rows: self.block_rows,
            threads: 1,
            ..CompactionConfig::default()
        }
    }

    /// Splits the raw blocks into 2–4 contiguous append groups.
    fn append_groups(&self, rng: &mut StdRng) -> Vec<std::ops::Range<usize>> {
        let n = self.raw_blocks.len();
        let n_groups = rng.gen_range(2..=4usize.min(n.max(2)));
        let mut cuts: Vec<usize> = (0..n_groups - 1).map(|_| rng.gen_range(1..n)).collect();
        cuts.sort_unstable();
        cuts.dedup();
        let mut groups = Vec::with_capacity(cuts.len() + 1);
        let mut start = 0;
        for cut in cuts {
            groups.push(start..cut);
            start = cut;
        }
        groups.push(start..n);
        groups
    }

    fn group_rows(&self, group: &std::ops::Range<usize>) -> usize {
        self.raw_blocks[group.clone()]
            .iter()
            .map(DataBlock::rows)
            .sum()
    }

    /// Builds the ingest table: create, append each group, then (when
    /// `compact_after`) compact. Returns the table (when it survived) and
    /// how many appends were acknowledged. Errors from the vfs (crash
    /// points) are normal and reported through the ack count; only
    /// non-crash divergence propagates as `Err`.
    #[allow(clippy::type_complexity)]
    fn run_ingest_workload(
        &self,
        vfs: Arc<dyn Vfs>,
        groups: &[std::ops::Range<usize>],
        compact_after: bool,
    ) -> Result<(Option<IngestTable>, usize), corra_columnar::error::Error> {
        let mut table = match IngestTable::create(vfs, self.ingest_config()) {
            Ok(t) => t,
            Err(_) => return Ok((None, 0)),
        };
        let mut acked = 0usize;
        for group in groups {
            if table
                .append_blocks(&self.raw_blocks[group.clone()])
                .is_err()
            {
                return Ok((None, acked));
            }
            acked += 1;
        }
        if compact_after && compact(&mut table, &self.compaction_config()).is_err() {
            return Ok((None, acked));
        }
        Ok((Some(table), acked))
    }

    /// Asserts the reader's first `rows` rows equal the model's, column by
    /// column (block boundaries may differ, so columns are concatenated).
    fn check_rows_equal_model_prefix(
        &self,
        reader: &SegmentedTable,
        rows: usize,
        what: &str,
    ) -> Result<(), SimFailure> {
        for name in self.model.names() {
            let mut got_int = Vec::new();
            let mut got_str = Vec::new();
            for b in 0..reader.n_blocks() {
                match reader
                    .read_column(b, name)
                    .map_err(|e| self.fail(format!("{what}: reading {name}: {e}")))?
                {
                    Column::Int64(v) => got_int.extend(v),
                    Column::Utf8(p) => got_str.extend(p.iter().map(str::to_owned)),
                }
            }
            let mut want_int = Vec::new();
            let mut want_str = Vec::new();
            for b in 0..self.model.n_blocks() {
                match self.model.column(b, name) {
                    Column::Int64(v) => want_int.extend(v),
                    Column::Utf8(p) => want_str.extend(p.iter().map(str::to_owned)),
                }
            }
            want_int.truncate(rows);
            want_str.truncate(rows);
            if got_int != want_int || got_str != want_str {
                return Err(self.fail(format!(
                    "{what}: column {name} diverged from the model prefix ({rows} rows)"
                )));
            }
        }
        Ok(())
    }
}

/// Builds the scenario for a seed and runs all passes.
pub fn run_seed(seed: u64, opts: &SimOptions) -> Result<ScenarioOutcome, SimFailure> {
    let scenario = Scenario::build(seed, opts);
    let fingerprint = scenario.verify_clean()?;
    let cache_hits = scenario.verify_cached()?;
    scenario.verify_benign_faults()?;
    let mut faults_injected = scenario.verify_hostile_faults()?;
    faults_injected += scenario.verify_hostile_parallel_faults()?;
    let sweep_flips = scenario.verify_sweep();
    let (ingest_crash_points, segments_opened) = scenario.verify_ingest()?;
    Ok(ScenarioOutcome {
        seed,
        workload: scenario.workload,
        rows: scenario.model.rows(),
        n_blocks: scenario.blocks.len(),
        ops: scenario.ops(),
        fingerprint,
        faults_injected,
        cache_hits,
        sweep_flips,
        ingest_crash_points,
        segments_opened,
    })
}

fn run_op(reader: &TableReader, op: &Op) -> corra_columnar::error::Result<Expected> {
    Ok(match op {
        Op::ReadBlock(b) => Expected::Block(reader.read_block(*b)?),
        Op::ReadColumn(b, name) => Expected::Column(reader.read_column(*b, name)?),
        Op::Scan(pred, threads) => {
            let (serial, _) = reader.scan_blocks(pred)?;
            let (parallel, _) = reader.scan_blocks_parallel(pred, *threads)?;
            if serial != parallel {
                return Err(corra_columnar::error::Error::invalid(
                    "serial and parallel store scans diverged",
                ));
            }
            Expected::Scan(serial)
        }
        Op::Aggregate(expr, _) => Expected::Agg(reader.aggregate(expr)?.0),
        Op::TopK(expr, threads) => {
            let (serial, _) = reader.top_k(expr)?;
            let (parallel, _) = reader.top_k_parallel(expr, *threads)?;
            if serial != parallel {
                return Err(corra_columnar::error::Error::invalid(
                    "serial and parallel store top-k diverged",
                ));
            }
            Expected::TopK(serial)
        }
        Op::Join(expr, threads) => {
            let (serial, _) = reader.hash_join(reader, expr)?;
            let (parallel, _) = reader.hash_join_parallel(reader, expr, *threads)?;
            if serial != parallel {
                return Err(corra_columnar::error::Error::invalid(
                    "serial and parallel store joins diverged",
                ));
            }
            Expected::Join(serial.len(), digest_pairs(&serial))
        }
    })
}

/// Serial-only variant of [`run_op`]: identical results, but backend reads
/// happen in one deterministic order (required by the hostile-episode
/// replay check).
fn run_op_serial(reader: &TableReader, op: &Op) -> corra_columnar::error::Result<Expected> {
    Ok(match op {
        Op::ReadBlock(b) => Expected::Block(reader.read_block(*b)?),
        Op::ReadColumn(b, name) => Expected::Column(reader.read_column(*b, name)?),
        Op::Scan(pred, _) => Expected::Scan(reader.scan_blocks(pred)?.0),
        Op::Aggregate(expr, _) => Expected::Agg(reader.aggregate(expr)?.0),
        Op::TopK(expr, _) => Expected::TopK(reader.top_k(expr)?.0),
        Op::Join(expr, _) => {
            let (pairs, _) = reader.hash_join(reader, expr)?;
            Expected::Join(pairs.len(), digest_pairs(&pairs))
        }
    })
}

/// Parallel-only variant of [`run_op`]: scans and aggregates run through
/// the morsel-parallel drivers at the op's scheduled thread count. Only
/// safe under fault plans whose read verdicts are positional
/// (order-independent) — see `verify_hostile_parallel_faults`.
fn run_op_parallel(reader: &TableReader, op: &Op) -> corra_columnar::error::Result<Expected> {
    Ok(match op {
        Op::ReadBlock(b) => Expected::Block(reader.read_block(*b)?),
        Op::ReadColumn(b, name) => Expected::Column(reader.read_column(*b, name)?),
        Op::Scan(pred, threads) => Expected::Scan(reader.scan_blocks_parallel(pred, *threads)?.0),
        Op::Aggregate(expr, threads) => {
            let blocks: Vec<_> = (0..reader.n_blocks())
                .map(|b| reader.read_block(b))
                .collect::<corra_columnar::error::Result<_>>()?;
            Expected::Agg(aggregate_blocks_parallel(&blocks, expr, *threads)?.0)
        }
        // TOP-K and join pre-read their blocks serially, like aggregates:
        // the store-parallel drivers prune via a shared bound whose state
        // depends on thread timing, so *which* backend reads happen would
        // vary run to run and scramble the positional fault replay.
        Op::TopK(expr, threads) => {
            let blocks: Vec<_> = (0..reader.n_blocks())
                .map(|b| reader.read_block(b))
                .collect::<corra_columnar::error::Result<_>>()?;
            Expected::TopK(top_k_blocks_parallel(&blocks, expr, *threads)?.0)
        }
        Op::Join(expr, threads) => {
            let blocks: Vec<_> = (0..reader.n_blocks())
                .map(|b| reader.read_block(b))
                .collect::<corra_columnar::error::Result<_>>()?;
            let (pairs, _) = hash_join_blocks_parallel(&blocks, &blocks, expr, *threads)?;
            Expected::Join(pairs.len(), digest_pairs(&pairs))
        }
    })
}

/// [`run_op_serial`] plus the op's cache-hit count (scans and aggregates
/// report hits through `ScanStats`; point ops return 0).
fn run_op_counted(reader: &TableReader, op: &Op) -> corra_columnar::error::Result<(Expected, u64)> {
    Ok(match op {
        Op::ReadBlock(b) => (Expected::Block(reader.read_block(*b)?), 0),
        Op::ReadColumn(b, name) => (Expected::Column(reader.read_column(*b, name)?), 0),
        Op::Scan(pred, _) => {
            let (sels, stats) = reader.scan_blocks(pred)?;
            (Expected::Scan(sels), stats.cache_hits)
        }
        Op::Aggregate(expr, _) => {
            let (agg, stats) = reader.aggregate(expr)?;
            (Expected::Agg(agg), stats.cache_hits)
        }
        Op::TopK(expr, _) => {
            let (rows, stats) = reader.top_k(expr)?;
            (Expected::TopK(rows), stats.cache_hits)
        }
        Op::Join(expr, _) => {
            let (pairs, stats) = reader.hash_join(reader, expr)?;
            (
                Expected::Join(pairs.len(), digest_pairs(&pairs)),
                stats.io.cache_hits,
            )
        }
    })
}

/// Runs one op against the multi-segment reader, returning the result and
/// the `segments_opened` count the op reported (point ops report 0 here —
/// their per-block stats are covered by the serve tests).
fn run_op_segmented(
    reader: &SegmentedTable,
    op: &Op,
) -> corra_columnar::error::Result<(Expected, u64)> {
    Ok(match op {
        Op::ReadBlock(b) => (Expected::Block(reader.read_block(*b)?), 0),
        Op::ReadColumn(b, name) => (Expected::Column(reader.read_column(*b, name)?), 0),
        Op::Scan(pred, _) => {
            let (sels, stats) = reader.scan_blocks(pred)?;
            (Expected::Scan(sels), stats.segments_opened as u64)
        }
        Op::Aggregate(expr, _) => {
            let (agg, stats) = reader.aggregate(expr)?;
            (Expected::Agg(agg), stats.segments_opened as u64)
        }
        Op::TopK(expr, _) => {
            let (rows, stats) = reader.top_k(expr)?;
            (Expected::TopK(rows), stats.segments_opened as u64)
        }
        Op::Join(expr, _) => {
            let (pairs, stats) = reader.hash_join(reader, expr)?;
            (
                Expected::Join(pairs.len(), digest_pairs(&pairs)),
                stats.io.segments_opened as u64,
            )
        }
    })
}

fn expect(model: &ModelTable, blocks: &[CompressedBlock], op: &Op) -> Expected {
    match op {
        Op::ReadBlock(b) => Expected::Block(blocks[*b].clone()),
        Op::ReadColumn(b, name) => Expected::Column(model.column(*b, name)),
        Op::Scan(pred, _) => Expected::Scan(model.scan(pred)),
        Op::Aggregate(expr, _) => Expected::Agg(model.aggregate(expr)),
        Op::TopK(expr, _) => Expected::TopK(model.top_k(expr)),
        Op::Join(expr, _) => {
            let pairs = model.join(expr, model);
            Expected::Join(pairs.len(), digest_pairs(&pairs))
        }
    }
}

// ---------------------------------------------------------------------------
// Operation scheduling.
// ---------------------------------------------------------------------------

fn schedule_ops(
    rng: &mut StdRng,
    model: &ModelTable,
    groupable: &[String],
    n_ops: usize,
) -> Vec<Op> {
    let int_cols: Vec<String> = model
        .names()
        .iter()
        .filter(|n| !model.is_string(n))
        .cloned()
        .collect();
    let str_cols: Vec<String> = model
        .names()
        .iter()
        .filter(|n| model.is_string(n))
        .cloned()
        .collect();
    let mut ops = Vec::with_capacity(n_ops);
    for _ in 0..n_ops {
        ops.push(match rng.gen_range(0..10) {
            0 => Op::ReadBlock(rng.gen_range(0..model.n_blocks())),
            1..=2 => {
                let names = model.names();
                Op::ReadColumn(
                    rng.gen_range(0..model.n_blocks()),
                    names[rng.gen_range(0..names.len())].clone(),
                )
            }
            3..=4 => Op::Scan(
                random_predicate(rng, model, &int_cols, &str_cols, 2),
                rng.gen_range(1..=4),
            ),
            5..=6 => Op::TopK(
                random_topk(rng, model, &int_cols, &str_cols),
                rng.gen_range(1..=4),
            ),
            7 => {
                // Self-join on one of the workload's dict-encoded key
                // columns (the groupable set is dict-planned by every
                // workload builder). Low-cardinality keys can explode
                // quadratically on a self-join, so oversized picks fall
                // back to an aggregate rather than stalling the harness.
                let expr = (!groupable.is_empty()).then(|| {
                    let key = &groupable[rng.gen_range(0..groupable.len())];
                    JoinExpr::on(key, key)
                });
                match expr.filter(|e| model.join_count(e, model) <= 200_000) {
                    Some(expr) => Op::Join(expr, rng.gen_range(1..=4)),
                    None => Op::Aggregate(
                        random_aggregate(rng, model, groupable, &int_cols, &str_cols),
                        rng.gen_range(1..=4),
                    ),
                }
            }
            _ => Op::Aggregate(
                random_aggregate(rng, model, groupable, &int_cols, &str_cols),
                rng.gen_range(1..=4),
            ),
        });
    }
    ops
}

/// A random TOP-K / ORDER BY expression over an integer column: both
/// directions, k spanning 0 / partial / >= rows (the ORDER BY degenerate
/// case), and an optional row filter.
fn random_topk(
    rng: &mut StdRng,
    model: &ModelTable,
    int_cols: &[String],
    str_cols: &[String],
) -> TopKExpr {
    let col = &int_cols[rng.gen_range(0..int_cols.len())];
    let k = match rng.gen_range(0..10) {
        0 => 0,
        1..=2 => model.rows() + rng.gen_range(0..8usize),
        _ => rng.gen_range(1..64),
    };
    let mut expr = if rng.gen_bool(0.5) {
        TopKExpr::desc(col, k)
    } else {
        TopKExpr::asc(col, k)
    };
    if rng.gen_bool(0.4) {
        expr = expr.with_filter(random_predicate(rng, model, int_cols, str_cols, 1));
    }
    expr
}

/// A random predicate tree, depth-bounded, with constants sampled from the
/// data so selectivities land everywhere between empty and full.
fn random_predicate(
    rng: &mut StdRng,
    model: &ModelTable,
    int_cols: &[String],
    str_cols: &[String],
    depth: usize,
) -> Predicate {
    if depth > 0 && rng.gen_bool(0.4) {
        let n = rng.gen_range(2..=3);
        let children: Vec<Predicate> = (0..n)
            .map(|_| random_predicate(rng, model, int_cols, str_cols, depth - 1))
            .collect();
        let combined = if rng.gen_bool(0.5) {
            Predicate::and(children)
        } else {
            Predicate::or(children)
        };
        return if rng.gen_bool(0.25) {
            Predicate::not(combined)
        } else {
            combined
        };
    }
    // Leaf: string equality when string columns exist, else integer.
    if !str_cols.is_empty() && rng.gen_bool(0.3) {
        let col = &str_cols[rng.gen_range(0..str_cols.len())];
        let value = model
            .sample_str(rng.gen_range(0..model.rows()), col)
            .to_owned();
        return if rng.gen_bool(0.25) {
            Predicate::str_ne(col, &value)
        } else {
            Predicate::str_eq(col, &value)
        };
    }
    let col = &int_cols[rng.gen_range(0..int_cols.len())];
    let pivot = model.sample_int(rng.gen_range(0..model.rows()), col);
    let jitter = rng.gen_range(-50..=50i64);
    let v = pivot.saturating_add(jitter);
    match rng.gen_range(0..7) {
        0 => Predicate::eq(col, pivot),
        1 => Predicate::ne(col, v),
        2 => Predicate::lt(col, v),
        3 => Predicate::le(col, v),
        4 => Predicate::gt(col, v),
        5 => Predicate::ge(col, v),
        _ => {
            let width = rng.gen_range(0..5_000i64);
            Predicate::between(col, v, v.saturating_add(width))
        }
    }
}

fn random_aggregate(
    rng: &mut StdRng,
    model: &ModelTable,
    groupable: &[String],
    int_cols: &[String],
    str_cols: &[String],
) -> AggExpr {
    const FUNCS: [AggFunc; 5] = [
        AggFunc::Count,
        AggFunc::Sum,
        AggFunc::Min,
        AggFunc::Max,
        AggFunc::Avg,
    ];
    let func = FUNCS[rng.gen_range(0..FUNCS.len())];
    // Target: COUNT(*) sometimes; string targets only for Count/Min/Max.
    let string_ok = matches!(func, AggFunc::Count | AggFunc::Min | AggFunc::Max);
    let mut expr = if matches!(func, AggFunc::Count) && rng.gen_bool(0.3) {
        AggExpr::count()
    } else if string_ok && !str_cols.is_empty() && rng.gen_bool(0.25) {
        AggExpr::of(func, &str_cols[rng.gen_range(0..str_cols.len())])
    } else {
        AggExpr::of(func, &int_cols[rng.gen_range(0..int_cols.len())])
    };
    if rng.gen_bool(0.5) {
        expr = expr.with_filter(random_predicate(rng, model, int_cols, str_cols, 1));
    }
    if !groupable.is_empty() && rng.gen_bool(0.4) {
        expr = expr.with_group_by(&groupable[rng.gen_range(0..groupable.len())]);
    }
    expr
}

// ---------------------------------------------------------------------------
// Workloads.
// ---------------------------------------------------------------------------

/// Builds `(table, config, groupable columns)` for a workload label.
fn build_workload(
    workload: &str,
    rows: usize,
    rng: &mut StdRng,
) -> (Table, CompressionConfig, Vec<String>) {
    let seed: u64 = rng.gen();
    match workload {
        "tpch" => {
            let table = LineitemDates::generate(rows, seed).into_table();
            let cfg = CompressionConfig::baseline()
                .with(
                    "l_commitdate",
                    ColumnPlan::NonHier {
                        reference: "l_shipdate".into(),
                    },
                )
                .with(
                    "l_receiptdate",
                    ColumnPlan::NonHier {
                        reference: "l_shipdate".into(),
                    },
                );
            (table, cfg, vec![])
        }
        "dmv" => {
            let table = DmvTable::generate(DmvParams::scaled(rows), seed).into_table();
            let cfg = CompressionConfig::baseline().with(
                "zip",
                ColumnPlan::Hier {
                    reference: "city".into(),
                },
            );
            (table, cfg, vec!["state".into(), "city".into()])
        }
        "ldbc" => {
            let table = MessageTable::generate(MessageParams::scaled(rows), seed).into_table();
            // Dict-planning the parent keeps it a valid hier reference and
            // makes it a legal GROUP BY key.
            let cfg = CompressionConfig::baseline()
                .with("countryid", ColumnPlan::Dict)
                .with(
                    "ip",
                    ColumnPlan::Hier {
                        reference: "countryid".into(),
                    },
                );
            (table, cfg, vec!["countryid".into()])
        }
        "taxi" => {
            let mut t = TaxiTable::generate(
                TaxiParams {
                    rows,
                    ..TaxiParams::default()
                },
                seed,
            );
            taxi::clean(&mut t);
            let table = t.into_table();
            let cfg = CompressionConfig::baseline()
                .with(
                    "dropoff",
                    ColumnPlan::NonHier {
                        reference: "pickup".into(),
                    },
                )
                .with(
                    "total_amount",
                    ColumnPlan::MultiRef {
                        groups: TaxiTable::reference_groups(),
                        code_bits: 2,
                    },
                );
            (table, cfg, vec![])
        }
        "timeseries" => {
            let table =
                TimeseriesTable::generate(&TimeseriesParams::scaled(rows), seed).into_table();
            let mut cfg = CompressionConfig::baseline();
            for col in ["ts", "device", "status", "latency_us"] {
                cfg.set(col, ColumnPlan::AutoFull);
            }
            (table, cfg, vec!["level".into(), "service".into()])
        }
        "synthetic" => synthetic_workload(rows, seed),
        other => unreachable!("unknown workload {other}"),
    }
}

/// The codec-family-dense synthetic workload: every horizontal scheme plus
/// dict/plain strings and a dict-int group key in one schema.
fn synthetic_workload(rows: usize, seed: u64) -> (Table, CompressionConfig, Vec<String>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rows;
    let cities = ["NYC", "Albany", "Naples", "Cortland", "Ithaca"];
    let n_cities = rng.gen_range(2..=cities.len());
    let zips_per_city = rng.gen_range(2..=6usize);
    let base_date: i64 = rng.gen_range(5_000..20_000);
    let spread: i64 = rng.gen_range(200..3_000);
    let city_idx: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n_cities)).collect();
    let city: Vec<&str> = city_idx.iter().map(|&c| cities[c]).collect();
    let note: Vec<String> = (0..n).map(|i| format!("n-{}", i % 11)).collect();
    let zip: Vec<i64> = city_idx
        .iter()
        .map(|&c| 10_000 + c as i64 * 100 + rng.gen_range(0..zips_per_city) as i64)
        .collect();
    let ship: Vec<i64> = (0..n)
        .map(|_| base_date + rng.gen_range(0..spread))
        .collect();
    let receipt: Vec<i64> = ship.iter().map(|&s| s + rng.gen_range(1..30i64)).collect();
    let fee: Vec<i64> = (0..n).map(|_| rng.gen_range(100..1_000i64)).collect();
    let extra: Vec<i64> = vec![rng.gen_range(5..50i64); n];
    let total: Vec<i64> = fee
        .iter()
        .zip(&extra)
        .enumerate()
        .map(|(i, (&f, &e))| if i % 2 == 0 { f } else { f + e })
        .collect();
    let bucket: Vec<i64> = (0..n).map(|_| rng.gen_range(0..7i64) * 1_000).collect();
    let table = Table::new(
        Schema::new(vec![
            Field::new("city", DataType::Utf8),
            Field::new("note", DataType::Utf8),
            Field::new("zip", DataType::Int64),
            Field::new("ship", DataType::Date),
            Field::new("receipt", DataType::Date),
            Field::new("fee", DataType::Int64),
            Field::new("extra", DataType::Int64),
            Field::new("total", DataType::Int64),
            Field::new("bucket", DataType::Int64),
        ])
        .expect("distinct names"),
        vec![
            Column::Utf8(city.into_iter().collect()),
            Column::Utf8(note.iter().map(String::as_str).collect()),
            Column::Int64(zip),
            Column::Int64(ship),
            Column::Int64(receipt),
            Column::Int64(fee),
            Column::Int64(extra),
            Column::Int64(total),
            Column::Int64(bucket),
        ],
    )
    .expect("aligned columns");
    let cfg = CompressionConfig::baseline()
        .with("note", ColumnPlan::Plain)
        .with(
            "zip",
            ColumnPlan::Hier {
                reference: "city".into(),
            },
        )
        .with(
            "receipt",
            ColumnPlan::NonHier {
                reference: "ship".into(),
            },
        )
        .with(
            "total",
            ColumnPlan::MultiRef {
                groups: vec![vec!["fee".into()], vec!["extra".into()]],
                code_bits: 2,
            },
        )
        .with("bucket", ColumnPlan::Dict);
    (table, cfg, vec!["city".into(), "bucket".into()])
}
