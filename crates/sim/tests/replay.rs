//! Replay guarantees: the pinned seed corpus stays green, identical seeds
//! are bit-reproducible, and a deliberately-planted fault is caught by the
//! model oracle and reported with its replay seed.

use corra_sim::{run_seed, Scenario, SimOptions, SEED_ENV};

const QUICK: SimOptions = SimOptions { quick: true };

fn corpus() -> Vec<u64> {
    include_str!("../seeds.txt")
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| l.parse().expect("seeds.txt entries are u64"))
        .collect()
}

#[test]
fn pinned_seed_corpus_replays_green() {
    let seeds = corpus();
    assert!(seeds.len() >= 12, "corpus shrank: {} seeds", seeds.len());
    // All six workloads stay covered (workload = seed % 6).
    for w in 0..6u64 {
        assert!(seeds.iter().any(|s| s % 6 == w), "corpus lost workload {w}");
    }
    let (mut topk, mut join) = (0usize, 0usize);
    for seed in seeds {
        let (t, j) = Scenario::build(seed, &QUICK).operator_ops();
        topk += t;
        join += j;
        run_seed(seed, &QUICK).unwrap_or_else(|f| panic!("{f}"));
    }
    // The schedules must keep mixing the compressed-domain operators in;
    // a scheduling regression that drops them would otherwise pass green.
    assert!(topk > 0, "corpus schedules contain no TOP-K ops");
    assert!(join > 0, "corpus schedules contain no join ops");
}

#[test]
fn same_seed_is_bit_reproducible() {
    for seed in [0u64, 7, 11, 104] {
        let a = run_seed(seed, &QUICK).unwrap_or_else(|f| panic!("{f}"));
        let b = run_seed(seed, &QUICK).unwrap_or_else(|f| panic!("{f}"));
        assert_eq!(
            a.fingerprint, b.fingerprint,
            "seed {seed}: two runs fingerprinted differently"
        );
        assert_eq!(a.faults_injected, b.faults_injected, "seed {seed}");
        // The serialized store image is byte-identical too.
        let sa = Scenario::build(seed, &QUICK);
        let sb = Scenario::build(seed, &QUICK);
        assert_eq!(sa.bytes, sb.bytes, "seed {seed}: store images differ");
    }
}

#[test]
fn planted_fault_is_caught_and_reports_its_seed() {
    // Corrupt one byte in the middle of an otherwise-valid store image:
    // the clean differential pass must fail (checksum rejection surfaces
    // as an op error, which the harness treats as a failure on the clean
    // path), and the failure must carry the replay seed.
    let seed = 5u64; // synthetic: densest codec coverage
    let mut scenario = Scenario::build(seed, &QUICK);
    let mid = scenario.bytes.len() / 2;
    scenario.bytes[mid] ^= 0x40;
    let failure = scenario
        .verify_clean()
        .expect_err("planted fault went undetected");
    assert_eq!(failure.seed, seed);
    let rendered = failure.to_string();
    assert!(
        rendered.contains(&format!("{SEED_ENV}={seed}")),
        "failure does not tell how to replay: {rendered}"
    );
}

#[test]
fn outcomes_describe_the_scenario() {
    let outcome = run_seed(4, &QUICK).unwrap_or_else(|f| panic!("{f}"));
    assert_eq!(outcome.workload, "timeseries");
    assert!(outcome.rows > 0);
    assert!(outcome.n_blocks > 1, "sim tables should span blocks");
    assert!(outcome.ops > 0);
    assert!(outcome.sweep_flips > 0);
    assert!(
        outcome.ingest_crash_points > 0,
        "ingest pass exercised no crash points"
    );
    assert!(
        outcome.segments_opened > 0,
        "multi-segment replay opened no segments"
    );
}
