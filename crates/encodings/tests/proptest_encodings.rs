//! Property-based tests: every encoding is a lossless, random-access
//! bijection and survives serialization.

use corra_columnar::predicate::IntRange;
use corra_columnar::selection::SelectionVector;
use corra_encodings::filter::filter_naive;
use corra_encodings::{
    choose_int_baseline, choose_int_full, DeltaInt, DictInt, DictStr, FilterInt, ForInt,
    FrequencyInt, IntAccess, IntEncoding, PlainInt, RleInt, StrAccess,
};
use proptest::prelude::*;

/// Value generators covering the paper's data shapes: dense ranges (dates),
/// few-distinct (dictionary material), runs, and adversarial randoms.
fn int_column() -> impl Strategy<Value = Vec<i64>> {
    prop_oneof![
        prop::collection::vec(8_000i64..11_000, 0..400), // date-like
        prop::collection::vec(-100i64..100, 0..400),     // small diffs
        prop::collection::vec(prop::sample::select(vec![1i64, 5, 1_000_000, -7]), 0..400),
        prop::collection::vec(any::<i64>(), 0..200), // adversarial
    ]
}

fn check_roundtrip(enc: &impl IntAccess, values: &[i64]) -> Result<(), TestCaseError> {
    prop_assert_eq!(enc.len(), values.len());
    let mut out = Vec::new();
    enc.decode_into(&mut out);
    prop_assert_eq!(&out, values);
    // Random access agrees at a few probes.
    for i in [0, values.len() / 2, values.len().saturating_sub(1)] {
        if i < values.len() {
            prop_assert_eq!(enc.get(i), values[i]);
        }
    }
    Ok(())
}

proptest! {
    #[test]
    fn for_roundtrip(values in int_column()) {
        check_roundtrip(&ForInt::encode(&values), &values)?;
    }

    #[test]
    fn dict_roundtrip(values in int_column()) {
        check_roundtrip(&DictInt::encode(&values), &values)?;
    }

    #[test]
    fn rle_roundtrip(values in int_column()) {
        check_roundtrip(&RleInt::encode(&values), &values)?;
    }

    #[test]
    fn delta_roundtrip(values in int_column()) {
        check_roundtrip(&DeltaInt::encode(&values), &values)?;
    }

    #[test]
    fn frequency_roundtrip(values in int_column(), k in 1usize..16) {
        check_roundtrip(&FrequencyInt::encode(&values, k), &values)?;
    }

    #[test]
    fn plain_roundtrip(values in int_column()) {
        check_roundtrip(&PlainInt::encode(&values), &values)?;
    }

    /// get(i) == full decode[i] at every position, for the chosen encoding.
    #[test]
    fn chooser_random_access_consistent(values in int_column()) {
        for enc in [choose_int_baseline(&values), choose_int_full(&values)] {
            let mut full = Vec::new();
            enc.decode_into(&mut full);
            for (i, &v) in full.iter().enumerate() {
                prop_assert_eq!(enc.get(i), v);
            }
        }
    }

    /// gather == decode-then-index for arbitrary selections.
    #[test]
    fn gather_equals_pointwise(
        values in prop::collection::vec(-5_000i64..5_000, 1..300),
        raw_sel in prop::collection::vec(any::<u32>(), 0..50),
    ) {
        let n = values.len() as u32;
        let sel = SelectionVector::new(raw_sel.into_iter().map(|p| p % n).collect());
        let enc = choose_int_full(&values);
        let mut got = Vec::new();
        enc.gather_into(&sel, &mut got);
        let want: Vec<i64> = sel.positions().iter().map(|&p| values[p as usize]).collect();
        prop_assert_eq!(got, want);
    }

    /// Serialization roundtrip for the chosen encoding of arbitrary data.
    #[test]
    fn encoding_serde_roundtrip(values in int_column()) {
        let enc = choose_int_full(&values);
        let mut buf = Vec::new();
        enc.write_to(&mut buf);
        prop_assert_eq!(buf.len(), enc.serialized_len());
        let back = IntEncoding::read_from(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(back, enc);
    }

    /// Truncated serialized encodings error, never panic.
    #[test]
    fn encoding_truncation_errors(values in prop::collection::vec(0i64..100, 1..100), frac in 0.0f64..1.0) {
        let enc = choose_int_full(&values);
        let mut buf = Vec::new();
        enc.write_to(&mut buf);
        let cut = ((buf.len() - 1) as f64 * frac) as usize;
        let slice = &buf[..cut];
        prop_assert!(IntEncoding::read_from(&mut &slice[..]).is_err());
    }

    /// Dict-str roundtrips arbitrary strings.
    #[test]
    fn dict_str_roundtrip(strings in prop::collection::vec("[a-zA-Z ]{0,12}", 0..100)) {
        let enc = DictStr::encode(strings.iter().map(String::as_str));
        prop_assert_eq!(enc.len(), strings.len());
        for (i, s) in strings.iter().enumerate() {
            prop_assert_eq!(enc.get(i), s.as_str());
        }
        let mut buf = Vec::new();
        enc.write_to(&mut buf);
        let back = DictStr::read_from(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(back, enc);
    }

    /// Pushdown parity: every codec's compressed-domain filter kernel finds
    /// exactly the positions decompress-then-filter would, for arbitrary
    /// ranges (including negated, empty, and all-covering ones).
    #[test]
    fn filter_kernels_match_naive(
        values in int_column(),
        a in any::<i64>(),
        b in any::<i64>(),
        negate in any::<bool>(),
    ) {
        let (lo, hi) = (a.min(b), a.max(b));
        let ranges = [
            IntRange { lo, hi, negate },
            // Constants drawn from the data exercise exact-hit paths.
            IntRange { lo: values.first().copied().unwrap_or(0), hi: values.last().copied().unwrap_or(0), negate },
            IntRange::empty(),
            IntRange::all(),
        ];
        let encodings = [
            IntEncoding::Plain(PlainInt::encode(&values)),
            IntEncoding::For(ForInt::encode(&values)),
            IntEncoding::Dict(DictInt::encode(&values)),
            IntEncoding::Rle(RleInt::encode(&values)),
            IntEncoding::Delta(DeltaInt::encode(&values)),
            IntEncoding::Frequency(FrequencyInt::encode(&values, 4)),
        ];
        for range in &ranges {
            let want = filter_naive(&values, range);
            for enc in &encodings {
                let mut got = Vec::new();
                enc.filter_into(range, &mut got);
                prop_assert!(got == want, "{} {:?}: {:?} != {:?}", enc.scheme(), range, got, want);
            }
        }
    }

    /// Every codec's zone map covers every encoded value.
    #[test]
    fn value_bounds_cover_data(values in int_column()) {
        let encodings = [
            IntEncoding::Plain(PlainInt::encode(&values)),
            IntEncoding::For(ForInt::encode(&values)),
            IntEncoding::Dict(DictInt::encode(&values)),
            IntEncoding::Rle(RleInt::encode(&values)),
            IntEncoding::Delta(DeltaInt::encode(&values)),
            IntEncoding::Frequency(FrequencyInt::encode(&values, 4)),
        ];
        for enc in &encodings {
            if let Some(zone) = enc.value_bounds() {
                for &v in &values {
                    prop_assert!(zone.covers(v), "{} {:?} misses {}", enc.scheme(), zone, v);
                }
            }
        }
    }

    /// The full chooser's pick is minimal among all candidates it considers.
    #[test]
    fn full_chooser_is_minimal(values in int_column()) {
        let chosen = choose_int_full(&values);
        let for_b = ForInt::encode(&values).compressed_bytes();
        let dict_b = DictInt::encode(&values).compressed_bytes();
        let rle_b = RleInt::encode(&values).compressed_bytes();
        let delta_b = DeltaInt::encode(&values).compressed_bytes();
        let plain_b = PlainInt::encode(&values).compressed_bytes();
        let min = for_b.min(dict_b).min(rle_b).min(delta_b).min(plain_b);
        prop_assert!(chosen.compressed_bytes() <= min);
    }
}
