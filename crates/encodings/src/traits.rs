//! Common interface implemented by every single-column encoding.

use corra_columnar::error::Result;
use corra_columnar::selection::SelectionVector;

/// Random-access decompression interface for integer encodings.
///
/// The paper's baseline deliberately restricts itself to schemes that "allow
/// for fast random access into the compressed column" (§3, Baseline); RLE and
/// Delta are included here for completeness and ablations but carry the
/// checkpoint structures that make their random access possible.
pub trait IntAccess {
    /// Number of encoded rows.
    fn len(&self) -> usize;

    /// Whether the column is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Decodes the value at row `i`.
    fn get(&self, i: usize) -> i64;

    /// Decodes the whole column into `out` (cleared first).
    fn decode_into(&self, out: &mut Vec<i64>) {
        out.clear();
        out.reserve(self.len());
        for i in 0..self.len() {
            out.push(self.get(i));
        }
    }

    /// Materializes the values at the selected positions into `out`
    /// (cleared first). This is the query kernel of the latency experiments.
    fn gather_into(&self, sel: &SelectionVector, out: &mut Vec<i64>) {
        out.clear();
        out.reserve(sel.len());
        for &p in sel.positions() {
            out.push(self.get(p as usize));
        }
    }

    /// Compressed size in bytes as reported in the size experiments:
    /// tightly-packed payload plus all metadata required for self-contained
    /// decompression.
    fn compressed_bytes(&self) -> usize;
}

/// Random-access decompression interface for string encodings.
pub trait StrAccess {
    /// Number of encoded rows.
    fn len(&self) -> usize;

    /// Whether the column is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Decodes the string at row `i`.
    fn get(&self, i: usize) -> &str;

    /// Materializes selected strings (as owned copies, matching the paper's
    /// "materialize the query output").
    fn gather_into(&self, sel: &SelectionVector, out: &mut Vec<String>) {
        out.clear();
        out.reserve(sel.len());
        for &p in sel.positions() {
            out.push(self.get(p as usize).to_owned());
        }
    }

    /// Compressed size in bytes including metadata.
    fn compressed_bytes(&self) -> usize;
}

/// Encodings that can verify an encode→decode roundtrip cheaply in tests.
pub trait Validate {
    /// Checks internal invariants, returning a corruption error if violated.
    fn validate(&self) -> Result<()>;
}

/// Order guarantee of a dictionary-style codec's code domain.
///
/// Integer dictionaries keep a *sorted* dictionary, so comparing two rows'
/// codes orders them exactly like comparing their decoded values — range
/// predicates, min/max zones, and TOP-K may run entirely in the code
/// domain. String dictionaries store their pool in *first-occurrence*
/// order, so code comparison is meaningless: every consumer of code order
/// must gate on this capability (and either fall back to a value-domain
/// path or reject the operation) instead of silently assuming sortedness.
pub trait CodeOrder {
    /// `true` iff comparing per-row codes is equivalent to comparing the
    /// values they decode to (i.e. the dictionary is sorted).
    fn codes_are_ordered(&self) -> bool;
}
