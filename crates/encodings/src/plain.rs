//! Plain (uncompressed) encodings — the "uncompressed" comparator in the
//! paper's latency zoom-ins (Fig. 6/7).

use bytes::{Buf, BufMut};
use corra_columnar::error::{Error, Result};
use corra_columnar::predicate::IntRange;
use corra_columnar::stats::ZoneMap;
use corra_columnar::strings::StringPool;

use corra_columnar::aggregate::{IntAggState, StrAggState};
use corra_columnar::selection::SelectionVector;

use crate::aggregate::{AggInt, AggStr};
use crate::filter::{FilterInt, FilterStr};
use crate::traits::{IntAccess, StrAccess};

/// Uncompressed 8-byte-per-value integer column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlainInt {
    values: Vec<i64>,
}

impl PlainInt {
    /// Wraps raw values.
    pub fn new(values: Vec<i64>) -> Self {
        Self { values }
    }

    /// Encodes from a slice.
    pub fn encode(values: &[i64]) -> Self {
        Self {
            values: values.to_vec(),
        }
    }

    /// Borrows the underlying values.
    pub fn values(&self) -> &[i64] {
        &self.values
    }

    /// Serialized length of [`write_to`](Self::write_to).
    pub fn serialized_len(&self) -> usize {
        8 + self.values.len() * 8
    }

    /// Writes `len (u64) | values` little-endian.
    pub fn write_to(&self, buf: &mut impl BufMut) {
        buf.put_u64_le(self.values.len() as u64);
        for &v in &self.values {
            buf.put_i64_le(v);
        }
    }

    /// Reads back a [`write_to`](Self::write_to) payload.
    pub fn read_from(buf: &mut impl Buf) -> Result<Self> {
        if buf.remaining() < 8 {
            return Err(Error::corrupt("plain-int header truncated"));
        }
        let len = buf.get_u64_le() as usize;
        if buf.remaining() < len.saturating_mul(8) {
            return Err(Error::corrupt("plain-int payload truncated"));
        }
        let mut values = Vec::with_capacity(len);
        for _ in 0..len {
            values.push(buf.get_i64_le());
        }
        Ok(Self { values })
    }
}

impl IntAccess for PlainInt {
    fn len(&self) -> usize {
        self.values.len()
    }

    #[inline]
    fn get(&self, i: usize) -> i64 {
        self.values[i]
    }

    fn decode_into(&self, out: &mut Vec<i64>) {
        out.clear();
        out.extend_from_slice(&self.values);
    }

    fn compressed_bytes(&self) -> usize {
        self.values.len() * 8
    }
}

impl FilterInt for PlainInt {
    /// Direct comparison over raw values — the comparator the compressed
    /// kernels are measured against — through the SIMD range kernel.
    fn filter_into(&self, range: &IntRange, out: &mut Vec<u32>) {
        out.clear();
        crate::filter::filter_i64_slice(&self.values, range, 0, out);
    }

    /// Plain stores no statistics, so bounds would cost the same full pass
    /// as the filter itself — no cheap zone map exists (as with Delta).
    fn value_bounds(&self) -> Option<ZoneMap> {
        None
    }
}

impl AggInt for PlainInt {
    /// Direct fold over raw values — the comparator the compressed kernels
    /// are measured against.
    fn aggregate_into(&self, state: &mut IntAggState) {
        for &v in &self.values {
            state.update(v);
        }
    }

    fn aggregate_selected(&self, sel: &SelectionVector, state: &mut IntAggState) {
        for &p in sel.positions() {
            state.update(self.values[p as usize]);
        }
    }

    fn aggregate_grouped(&self, group_of: &[u32], states: &mut [IntAggState]) {
        assert_eq!(group_of.len(), self.values.len(), "group codes misaligned");
        for (&v, &g) in self.values.iter().zip(group_of) {
            states[g as usize].update(v);
        }
    }

    fn exact_bounds(&self) -> Option<ZoneMap> {
        ZoneMap::from_values(&self.values)
    }
}

impl AggStr for PlainStr {
    fn aggregate_into(&self, state: &mut StrAggState) {
        for s in self.pool.iter() {
            state.update(s);
        }
    }

    fn aggregate_selected(&self, sel: &SelectionVector, state: &mut StrAggState) {
        for &p in sel.positions() {
            state.update(self.pool.get(p as usize));
        }
    }

    fn aggregate_grouped(&self, group_of: &[u32], states: &mut [StrAggState]) {
        assert_eq!(group_of.len(), self.pool.len(), "group codes misaligned");
        for (i, &g) in group_of.iter().enumerate() {
            states[g as usize].update(self.pool.get(i));
        }
    }
}

/// Uncompressed string column (flattened rows).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlainStr {
    pool: StringPool,
}

impl PlainStr {
    /// Wraps a per-row string pool.
    pub fn new(pool: StringPool) -> Self {
        Self { pool }
    }

    /// Encodes from string slices.
    pub fn encode<'a>(values: impl IntoIterator<Item = &'a str>) -> Self {
        Self {
            pool: StringPool::from_iter(values),
        }
    }

    /// Borrows the underlying pool.
    pub fn pool(&self) -> &StringPool {
        &self.pool
    }
}

impl FilterStr for PlainStr {
    /// Direct string comparison per row.
    fn filter_eq_into(&self, value: &str, negate: bool, out: &mut Vec<u32>) {
        out.clear();
        for i in 0..self.pool.len() {
            if (self.pool.get(i) == value) != negate {
                out.push(i as u32);
            }
        }
    }
}

impl StrAccess for PlainStr {
    fn len(&self) -> usize {
        self.pool.len()
    }

    #[inline]
    fn get(&self, i: usize) -> &str {
        self.pool.get(i)
    }

    fn compressed_bytes(&self) -> usize {
        self.pool.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corra_columnar::selection::SelectionVector;

    #[test]
    fn plain_int_access() {
        let enc = PlainInt::encode(&[10, -20, 30]);
        assert_eq!(enc.len(), 3);
        assert_eq!(enc.get(1), -20);
        let mut out = Vec::new();
        enc.decode_into(&mut out);
        assert_eq!(out, vec![10, -20, 30]);
        assert_eq!(enc.compressed_bytes(), 24);
    }

    #[test]
    fn plain_int_gather() {
        let enc = PlainInt::encode(&(0..100i64).collect::<Vec<_>>());
        let sel = SelectionVector::new(vec![3, 97]);
        let mut out = Vec::new();
        enc.gather_into(&sel, &mut out);
        assert_eq!(out, vec![3, 97]);
    }

    #[test]
    fn plain_int_serialization() {
        let enc = PlainInt::encode(&[i64::MIN, 0, i64::MAX]);
        let mut buf = Vec::new();
        enc.write_to(&mut buf);
        assert_eq!(buf.len(), enc.serialized_len());
        let back = PlainInt::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(back, enc);
        let cut = &buf[..buf.len() - 1];
        assert!(PlainInt::read_from(&mut &cut[..]).is_err());
    }

    #[test]
    fn plain_str_access() {
        let enc = PlainStr::encode(["a", "bb", "a"]);
        assert_eq!(enc.len(), 3);
        assert_eq!(enc.get(2), "a");
        // 4 bytes content + 4 offsets * 4B
        assert_eq!(enc.compressed_bytes(), 4 + 16);
        let sel = SelectionVector::new(vec![0, 1]);
        let mut out = Vec::new();
        enc.gather_into(&sel, &mut out);
        assert_eq!(out, vec!["a".to_owned(), "bb".to_owned()]);
    }

    #[test]
    fn empty_columns() {
        let enc = PlainInt::encode(&[]);
        assert!(enc.is_empty());
        assert!(enc.value_bounds().is_none());
        let enc = PlainStr::encode([]);
        assert!(enc.is_empty());
    }

    #[test]
    fn plain_filters() {
        let values = vec![10i64, -20, 30, 10];
        let enc = PlainInt::encode(&values);
        let mut out = Vec::new();
        enc.filter_into(&IntRange::new(0, 15), &mut out);
        assert_eq!(out, vec![0, 3]);
        enc.filter_into(&IntRange::negated(0, 15), &mut out);
        assert_eq!(out, vec![1, 2]);
        assert!(enc.value_bounds().is_none());
        let enc = PlainStr::encode(["a", "bb", "a"]);
        enc.filter_eq_into("a", false, &mut out);
        assert_eq!(out, vec![0, 2]);
        enc.filter_eq_into("a", true, &mut out);
        assert_eq!(out, vec![1]);
    }
}
