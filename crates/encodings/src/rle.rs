//! Run-Length Encoding with a run-boundary index for random access.
//!
//! The paper excludes RLE from its baseline because "both RLE and Delta
//! require checkpoints" (§3) for random access. We implement it anyway —
//! with exactly that checkpoint structure (the array of run end positions,
//! searched by binary search) — so the trade-off can be measured in the
//! ablation benches.

use bytes::{Buf, BufMut};
use corra_columnar::error::{Error, Result};
use corra_columnar::predicate::IntRange;
use corra_columnar::stats::ZoneMap;

use corra_columnar::aggregate::IntAggState;
use corra_columnar::selection::SelectionVector;

use crate::aggregate::AggInt;
use crate::filter::FilterInt;
use crate::traits::{IntAccess, Validate};

/// RLE-encoded integer column: `(value, run)` pairs plus cumulative run ends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RleInt {
    /// Value of each run.
    run_values: Vec<i64>,
    /// Exclusive end position of each run (strictly increasing); acts as the
    /// checkpoint index for random access.
    run_ends: Vec<u32>,
}

impl RleInt {
    /// Encodes `values`.
    pub fn encode(values: &[i64]) -> Self {
        let mut run_values = Vec::new();
        let mut run_ends = Vec::new();
        let mut iter = values.iter().copied().enumerate();
        if let Some((_, first)) = iter.next() {
            let mut current = first;
            for (i, v) in iter {
                if v != current {
                    run_values.push(current);
                    run_ends.push(i as u32);
                    current = v;
                }
            }
            run_values.push(current);
            run_ends.push(values.len() as u32);
        }
        Self {
            run_values,
            run_ends,
        }
    }

    /// Number of runs.
    pub fn runs(&self) -> usize {
        self.run_values.len()
    }

    /// The per-run values (one entry per run, adjacent runs differ).
    pub fn run_values(&self) -> &[i64] {
        &self.run_values
    }

    /// The exclusive end position of each run (strictly increasing).
    pub fn run_ends(&self) -> &[u32] {
        &self.run_ends
    }

    /// Serialized length of [`write_to`](Self::write_to).
    pub fn serialized_len(&self) -> usize {
        8 + self.run_values.len() * 8 + self.run_ends.len() * 4
    }

    /// Writes `runs (u64) | run_values | run_ends`.
    pub fn write_to(&self, buf: &mut impl BufMut) {
        buf.put_u64_le(self.run_values.len() as u64);
        for &v in &self.run_values {
            buf.put_i64_le(v);
        }
        for &e in &self.run_ends {
            buf.put_u32_le(e);
        }
    }

    /// Reads back a [`write_to`](Self::write_to) payload.
    pub fn read_from(buf: &mut impl Buf) -> Result<Self> {
        if buf.remaining() < 8 {
            return Err(Error::corrupt("rle header truncated"));
        }
        let runs = buf.get_u64_le() as usize;
        if buf.remaining() < runs.saturating_mul(12) {
            return Err(Error::corrupt("rle payload truncated"));
        }
        let mut run_values = Vec::with_capacity(runs);
        for _ in 0..runs {
            run_values.push(buf.get_i64_le());
        }
        let mut run_ends = Vec::with_capacity(runs);
        for _ in 0..runs {
            run_ends.push(buf.get_u32_le());
        }
        let out = Self {
            run_values,
            run_ends,
        };
        out.validate()?;
        Ok(out)
    }

    /// Index of the run containing row `i` (binary search over checkpoints).
    #[inline]
    fn run_of(&self, i: usize) -> usize {
        debug_assert!(i < self.len());
        self.run_ends.partition_point(|&e| e as usize <= i)
    }
}

impl IntAccess for RleInt {
    fn len(&self) -> usize {
        self.run_ends.last().map_or(0, |&e| e as usize)
    }

    #[inline]
    fn get(&self, i: usize) -> i64 {
        self.run_values[self.run_of(i)]
    }

    fn decode_into(&self, out: &mut Vec<i64>) {
        out.clear();
        out.reserve(self.len());
        // One resize-fill per run instead of a per-element push loop.
        for (&v, &end) in self.run_values.iter().zip(&self.run_ends) {
            out.resize(end as usize, v);
        }
    }

    fn compressed_bytes(&self) -> usize {
        self.run_values.len() * 8 + self.run_ends.len() * 4
    }
}

impl FilterInt for RleInt {
    /// Evaluates the predicate once per *run*: a non-matching run is skipped
    /// wholesale, a matching run contributes all of its positions.
    fn filter_into(&self, range: &IntRange, out: &mut Vec<u32>) {
        out.clear();
        let mut start = 0u32;
        for (&v, &end) in self.run_values.iter().zip(&self.run_ends) {
            if range.matches(v) {
                out.extend(start..end);
            }
            start = end;
        }
    }

    /// Exact bounds from one pass over the run values (O(runs), not O(rows)).
    fn value_bounds(&self) -> Option<ZoneMap> {
        ZoneMap::from_values(&self.run_values)
    }
}

impl AggInt for RleInt {
    /// Folds once per *run* (`value · run_len`) — O(runs), not O(rows).
    fn aggregate_into(&self, state: &mut IntAggState) {
        let mut start = 0u32;
        for (&v, &end) in self.run_values.iter().zip(&self.run_ends) {
            state.update_n(v, (end - start) as u64);
            start = end;
        }
    }

    /// Sorted-merge of the selection against the run index: each run folds
    /// the number of selected positions it contains in one `update_n` —
    /// O(runs + selected), never a per-row value reconstruction.
    fn aggregate_selected(&self, sel: &SelectionVector, state: &mut IntAggState) {
        // Positions are sorted, so one check on the last bounds them all.
        if let Some(&last) = sel.positions().last() {
            assert!(
                (last as usize) < self.len(),
                "position {last} out of bounds (len {})",
                self.len()
            );
        } else {
            return;
        }
        let pos = sel.positions();
        let mut p = 0usize;
        for (&v, &end) in self.run_values.iter().zip(&self.run_ends) {
            let begin = p;
            while p < pos.len() && pos[p] < end {
                p += 1;
            }
            state.update_n(v, (p - begin) as u64);
            if p == pos.len() {
                break;
            }
        }
    }

    fn aggregate_grouped(&self, group_of: &[u32], states: &mut [IntAggState]) {
        assert_eq!(group_of.len(), self.len(), "group codes misaligned");
        let mut start = 0usize;
        for (&v, &end) in self.run_values.iter().zip(&self.run_ends) {
            for &g in &group_of[start..end as usize] {
                states[g as usize].update(v);
            }
            start = end as usize;
        }
    }

    /// Exact bounds over the run values — O(runs), every run is non-empty.
    fn exact_bounds(&self) -> Option<corra_columnar::stats::ZoneMap> {
        self.value_bounds()
    }
}

impl Validate for RleInt {
    fn validate(&self) -> Result<()> {
        if self.run_values.len() != self.run_ends.len() {
            return Err(Error::corrupt("rle arrays misaligned"));
        }
        let mut prev = 0u32;
        for &e in &self.run_ends {
            if e <= prev && !(prev == 0 && e == 0) {
                return Err(Error::corrupt("rle run ends not strictly increasing"));
            }
            prev = e;
        }
        // Adjacent runs must differ (canonical form).
        if self.run_values.windows(2).any(|w| w[0] == w[1]) {
            return Err(Error::corrupt("rle adjacent runs equal"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corra_columnar::selection::SelectionVector;

    #[test]
    fn roundtrip_basic() {
        let values = vec![1i64, 1, 1, 2, 2, 3, 1, 1];
        let enc = RleInt::encode(&values);
        assert_eq!(enc.runs(), 4);
        let mut out = Vec::new();
        enc.decode_into(&mut out);
        assert_eq!(out, values);
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(enc.get(i), v, "row {i}");
        }
    }

    #[test]
    fn single_run() {
        let enc = RleInt::encode(&[9; 10_000]);
        assert_eq!(enc.runs(), 1);
        assert_eq!(enc.len(), 10_000);
        assert_eq!(enc.get(9_999), 9);
        assert_eq!(enc.compressed_bytes(), 12);
    }

    #[test]
    fn no_runs_worst_case() {
        let values: Vec<i64> = (0..100).collect();
        let enc = RleInt::encode(&values);
        assert_eq!(enc.runs(), 100);
        // Worse than plain: 12 bytes per run vs 8 plain.
        assert!(enc.compressed_bytes() > values.len() * 8);
    }

    #[test]
    fn empty() {
        let enc = RleInt::encode(&[]);
        assert!(enc.is_empty());
        assert_eq!(enc.runs(), 0);
        let mut out = vec![5];
        enc.decode_into(&mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn run_boundaries() {
        let values = vec![5i64, 5, 7, 7, 7, 2];
        let enc = RleInt::encode(&values);
        assert_eq!(enc.get(1), 5);
        assert_eq!(enc.get(2), 7);
        assert_eq!(enc.get(4), 7);
        assert_eq!(enc.get(5), 2);
    }

    #[test]
    fn gather() {
        let values = vec![1i64, 1, 2, 2, 2, 3];
        let enc = RleInt::encode(&values);
        let sel = SelectionVector::new(vec![0, 2, 5]);
        let mut out = Vec::new();
        enc.gather_into(&sel, &mut out);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn filter_skips_runs() {
        let values = vec![1i64, 1, 2, 2, 2, 3, 1, 1];
        let enc = RleInt::encode(&values);
        let mut out = Vec::new();
        for range in [
            IntRange::new(2, 2),
            IntRange::negated(1, 1),
            IntRange::new(1, 3),
            IntRange::new(9, 9),
        ] {
            enc.filter_into(&range, &mut out);
            assert_eq!(
                out,
                crate::filter::filter_naive(&values, &range),
                "{range:?}"
            );
        }
        let zone = enc.value_bounds().unwrap();
        assert_eq!((zone.min, zone.max), (1, 3));
        assert!(RleInt::encode(&[]).value_bounds().is_none());
    }

    #[test]
    fn serialization_roundtrip() {
        let enc = RleInt::encode(&[4, 4, 6, 6, 6, 1]);
        let mut buf = Vec::new();
        enc.write_to(&mut buf);
        assert_eq!(buf.len(), enc.serialized_len());
        let back = RleInt::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(back, enc);
        assert!(RleInt::read_from(&mut &buf[..10]).is_err());
    }

    #[test]
    fn serialization_rejects_noncanonical() {
        // Hand-craft equal adjacent runs.
        let mut buf = Vec::new();
        buf.extend_from_slice(&2u64.to_le_bytes());
        buf.extend_from_slice(&5i64.to_le_bytes());
        buf.extend_from_slice(&5i64.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&2u32.to_le_bytes());
        assert!(RleInt::read_from(&mut buf.as_slice()).is_err());
    }
}
