//! # corra-encodings
//!
//! Single-column ("vertical") encoding schemes — the status quo the Corra
//! paper improves on, and its experimental baseline.
//!
//! Implemented schemes:
//!
//! * [`plain::PlainInt`] / [`plain::PlainStr`] — uncompressed comparators;
//! * [`ffor::ForInt`] — Frame-of-Reference + bit-packing;
//! * [`dict::DictInt`] / [`dict::DictStr`] — dictionary + bit-packing with a
//!   flattened distinct-string array;
//! * [`rle::RleInt`] — run-length with a checkpoint index;
//! * [`delta::DeltaInt`] — delta with miniblock restarts;
//! * [`frequency::FrequencyInt`] — frequent values + exception region.
//!
//! The paper's baseline chooser ([`chooser::choose_int_baseline`]) considers
//! only FOR and Dict, "because they allow for fast random access into the
//! compressed column"; [`chooser::choose_int_full`] covers all schemes for
//! ablation studies.
//!
//! Every integer scheme additionally implements [`filter::FilterInt`], the
//! compressed-domain predicate kernel behind `corra-core::scan`'s pushdown,
//! [`aggregate::AggInt`], the compressed-domain fold kernel behind
//! `corra-core::aggregate` (COUNT/SUM/MIN/MAX/AVG without materializing
//! values), and [`topk::TopKInt`], the bounded-selection kernel behind
//! `corra-core::operator`'s TOP-K / ORDER BY (run-folding for RLE,
//! code-domain selection for sorted dictionaries). Dictionary codecs
//! declare their code-order guarantee via [`traits::CodeOrder`] — int
//! dictionaries are sorted, string pools are first-occurrence-ordered.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod aggregate;
pub mod chooser;
pub mod delta;
pub mod dict;
pub mod ffor;
pub mod filter;
pub mod frequency;
pub mod plain;
pub mod rle;
pub mod topk;
pub mod traits;

// Format-v2 framing: every serializable encoding gains the length-prefix
// frame (write_framed/read_framed) around its existing payload layout.
corra_columnar::impl_framed!(
    chooser::IntEncoding,
    delta::DeltaInt,
    dict::DictInt,
    dict::DictStr,
    ffor::ForInt,
    frequency::FrequencyInt,
    plain::PlainInt,
    rle::RleInt,
);

pub use aggregate::{AggInt, AggStr};
pub use chooser::{choose_int_baseline, choose_int_full, choose_str_baseline, IntEncoding};
pub use delta::DeltaInt;
pub use dict::{DictInt, DictStr};
pub use ffor::ForInt;
pub use filter::{FilterInt, FilterStr};
pub use frequency::FrequencyInt;
pub use plain::{PlainInt, PlainStr};
pub use rle::RleInt;
pub use topk::TopKInt;
pub use traits::{CodeOrder, IntAccess, StrAccess, Validate};
