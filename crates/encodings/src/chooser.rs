//! Cost-based selection of the best single-column encoding.
//!
//! The paper's baseline (§3): *"a baseline that employs the best
//! single-column encoding scheme for each column. We use FOR- or
//! Dict-encoding schemes, followed by a bit-packing. We chose these because
//! they allow for fast random access into the compressed column; both RLE
//! and Delta require checkpoints."*
//!
//! [`choose_int_baseline`] implements exactly that (FOR vs. Dict by
//! compressed size). [`choose_int_full`] additionally considers RLE, Delta
//! and Frequency for the ablation benches.

use bytes::{Buf, BufMut};
use corra_columnar::aggregate::IntAggState;
use corra_columnar::error::{Error, Result};
use corra_columnar::predicate::IntRange;
use corra_columnar::selection::SelectionVector;
use corra_columnar::stats::{IntStats, ZoneMap};

use crate::aggregate::AggInt;
use crate::delta::DeltaInt;
use crate::dict::{DictInt, DictStr};
use crate::ffor::ForInt;
use crate::filter::FilterInt;
use crate::frequency::FrequencyInt;
use crate::plain::PlainInt;
use crate::rle::RleInt;
use crate::traits::IntAccess;

/// Any of the integer encodings, chosen at compression time.
#[derive(Debug, Clone, PartialEq)]
pub enum IntEncoding {
    /// No compression.
    Plain(PlainInt),
    /// Frame-of-reference + bit-packing.
    For(ForInt),
    /// Dictionary + bit-packing.
    Dict(DictInt),
    /// Run-length with checkpoint index.
    Rle(RleInt),
    /// Delta with miniblock restarts.
    Delta(DeltaInt),
    /// Frequency with exception region.
    Frequency(FrequencyInt),
}

impl IntEncoding {
    /// The code-domain order guarantee of this encoding: `Some(true)` when
    /// comparing per-row codes is equivalent to comparing decoded values,
    /// `Some(false)` when codes carry no order, and `None` for encodings
    /// without a code domain (see [`crate::traits::CodeOrder`]).
    pub fn codes_are_ordered(&self) -> Option<bool> {
        use crate::traits::CodeOrder;
        match self {
            IntEncoding::Dict(d) => Some(d.codes_are_ordered()),
            _ => None,
        }
    }

    /// A short scheme name for experiment output.
    pub fn scheme(&self) -> &'static str {
        match self {
            IntEncoding::Plain(_) => "plain",
            IntEncoding::For(_) => "for",
            IntEncoding::Dict(_) => "dict",
            IntEncoding::Rle(_) => "rle",
            IntEncoding::Delta(_) => "delta",
            IntEncoding::Frequency(_) => "frequency",
        }
    }

    /// Discriminant tag used in the serialized block format.
    fn tag(&self) -> u8 {
        match self {
            IntEncoding::Plain(_) => 0,
            IntEncoding::For(_) => 1,
            IntEncoding::Dict(_) => 2,
            IntEncoding::Rle(_) => 3,
            IntEncoding::Delta(_) => 4,
            IntEncoding::Frequency(_) => 5,
        }
    }

    /// Writes `tag | payload`.
    pub fn write_to(&self, buf: &mut impl BufMut) {
        buf.put_u8(self.tag());
        match self {
            IntEncoding::Plain(e) => e.write_to(buf),
            IntEncoding::For(e) => e.write_to(buf),
            IntEncoding::Dict(e) => e.write_to(buf),
            IntEncoding::Rle(e) => e.write_to(buf),
            IntEncoding::Delta(e) => e.write_to(buf),
            IntEncoding::Frequency(e) => e.write_to(buf),
        }
    }

    /// Serialized length of [`write_to`](Self::write_to).
    pub fn serialized_len(&self) -> usize {
        1 + match self {
            IntEncoding::Plain(e) => e.serialized_len(),
            IntEncoding::For(e) => e.serialized_len(),
            IntEncoding::Dict(e) => e.serialized_len(),
            IntEncoding::Rle(e) => e.serialized_len(),
            IntEncoding::Delta(e) => e.serialized_len(),
            IntEncoding::Frequency(e) => e.serialized_len(),
        }
    }

    /// Reads back a [`write_to`](Self::write_to) payload.
    pub fn read_from(buf: &mut impl Buf) -> Result<Self> {
        if buf.remaining() < 1 {
            return Err(Error::corrupt("int encoding tag truncated"));
        }
        match buf.get_u8() {
            0 => Ok(IntEncoding::Plain(PlainInt::read_from(buf)?)),
            1 => Ok(IntEncoding::For(ForInt::read_from(buf)?)),
            2 => Ok(IntEncoding::Dict(DictInt::read_from(buf)?)),
            3 => Ok(IntEncoding::Rle(RleInt::read_from(buf)?)),
            4 => Ok(IntEncoding::Delta(DeltaInt::read_from(buf)?)),
            5 => Ok(IntEncoding::Frequency(FrequencyInt::read_from(buf)?)),
            t => Err(Error::corrupt(format!("unknown int encoding tag {t}"))),
        }
    }
}

impl IntAccess for IntEncoding {
    fn len(&self) -> usize {
        match self {
            IntEncoding::Plain(e) => e.len(),
            IntEncoding::For(e) => e.len(),
            IntEncoding::Dict(e) => e.len(),
            IntEncoding::Rle(e) => e.len(),
            IntEncoding::Delta(e) => e.len(),
            IntEncoding::Frequency(e) => e.len(),
        }
    }

    #[inline]
    fn get(&self, i: usize) -> i64 {
        match self {
            IntEncoding::Plain(e) => e.get(i),
            IntEncoding::For(e) => e.get(i),
            IntEncoding::Dict(e) => e.get(i),
            IntEncoding::Rle(e) => e.get(i),
            IntEncoding::Delta(e) => e.get(i),
            IntEncoding::Frequency(e) => e.get(i),
        }
    }

    fn decode_into(&self, out: &mut Vec<i64>) {
        match self {
            IntEncoding::Plain(e) => e.decode_into(out),
            IntEncoding::For(e) => e.decode_into(out),
            IntEncoding::Dict(e) => e.decode_into(out),
            IntEncoding::Rle(e) => e.decode_into(out),
            IntEncoding::Delta(e) => e.decode_into(out),
            IntEncoding::Frequency(e) => e.decode_into(out),
        }
    }

    fn gather_into(&self, sel: &SelectionVector, out: &mut Vec<i64>) {
        match self {
            IntEncoding::Plain(e) => e.gather_into(sel, out),
            IntEncoding::For(e) => e.gather_into(sel, out),
            IntEncoding::Dict(e) => e.gather_into(sel, out),
            IntEncoding::Rle(e) => e.gather_into(sel, out),
            IntEncoding::Delta(e) => e.gather_into(sel, out),
            IntEncoding::Frequency(e) => e.gather_into(sel, out),
        }
    }

    fn compressed_bytes(&self) -> usize {
        match self {
            IntEncoding::Plain(e) => e.compressed_bytes(),
            IntEncoding::For(e) => e.compressed_bytes(),
            IntEncoding::Dict(e) => e.compressed_bytes(),
            IntEncoding::Rle(e) => e.compressed_bytes(),
            IntEncoding::Delta(e) => e.compressed_bytes(),
            IntEncoding::Frequency(e) => e.compressed_bytes(),
        }
    }
}

impl FilterInt for IntEncoding {
    fn filter_into(&self, range: &IntRange, out: &mut Vec<u32>) {
        match self {
            IntEncoding::Plain(e) => e.filter_into(range, out),
            IntEncoding::For(e) => e.filter_into(range, out),
            IntEncoding::Dict(e) => e.filter_into(range, out),
            IntEncoding::Rle(e) => e.filter_into(range, out),
            IntEncoding::Delta(e) => e.filter_into(range, out),
            IntEncoding::Frequency(e) => e.filter_into(range, out),
        }
    }

    fn value_bounds(&self) -> Option<ZoneMap> {
        match self {
            IntEncoding::Plain(e) => e.value_bounds(),
            IntEncoding::For(e) => e.value_bounds(),
            IntEncoding::Dict(e) => e.value_bounds(),
            IntEncoding::Rle(e) => e.value_bounds(),
            IntEncoding::Delta(e) => e.value_bounds(),
            IntEncoding::Frequency(e) => e.value_bounds(),
        }
    }
}

impl AggInt for IntEncoding {
    fn aggregate_into(&self, state: &mut IntAggState) {
        match self {
            IntEncoding::Plain(e) => e.aggregate_into(state),
            IntEncoding::For(e) => e.aggregate_into(state),
            IntEncoding::Dict(e) => e.aggregate_into(state),
            IntEncoding::Rle(e) => e.aggregate_into(state),
            IntEncoding::Delta(e) => e.aggregate_into(state),
            IntEncoding::Frequency(e) => e.aggregate_into(state),
        }
    }

    fn aggregate_selected(&self, sel: &SelectionVector, state: &mut IntAggState) {
        match self {
            IntEncoding::Plain(e) => e.aggregate_selected(sel, state),
            IntEncoding::For(e) => e.aggregate_selected(sel, state),
            IntEncoding::Dict(e) => e.aggregate_selected(sel, state),
            IntEncoding::Rle(e) => e.aggregate_selected(sel, state),
            IntEncoding::Delta(e) => e.aggregate_selected(sel, state),
            IntEncoding::Frequency(e) => e.aggregate_selected(sel, state),
        }
    }

    fn aggregate_grouped(&self, group_of: &[u32], states: &mut [IntAggState]) {
        match self {
            IntEncoding::Plain(e) => e.aggregate_grouped(group_of, states),
            IntEncoding::For(e) => e.aggregate_grouped(group_of, states),
            IntEncoding::Dict(e) => e.aggregate_grouped(group_of, states),
            IntEncoding::Rle(e) => e.aggregate_grouped(group_of, states),
            IntEncoding::Delta(e) => e.aggregate_grouped(group_of, states),
            IntEncoding::Frequency(e) => e.aggregate_grouped(group_of, states),
        }
    }

    fn exact_bounds(&self) -> Option<ZoneMap> {
        match self {
            IntEncoding::Plain(e) => e.exact_bounds(),
            IntEncoding::For(e) => e.exact_bounds(),
            IntEncoding::Dict(e) => e.exact_bounds(),
            IntEncoding::Rle(e) => e.exact_bounds(),
            IntEncoding::Delta(e) => e.exact_bounds(),
            IntEncoding::Frequency(e) => e.exact_bounds(),
        }
    }
}

/// Estimates the FOR compressed size from statistics without encoding.
pub fn estimate_for_bytes(stats: &IntStats) -> usize {
    8 + 1 + ((stats.count as u64 * stats.for_bits() as u64).div_ceil(8)) as usize
}

/// Estimates the Dict compressed size from statistics without encoding.
pub fn estimate_dict_bytes(stats: &IntStats) -> usize {
    stats.distinct * 8 + 1 + ((stats.count as u64 * stats.dict_bits() as u64).div_ceil(8)) as usize
}

/// The paper's baseline chooser: best of FOR and Dict by compressed size.
pub fn choose_int_baseline(values: &[i64]) -> IntEncoding {
    let stats = IntStats::compute(values);
    if estimate_dict_bytes(&stats) < estimate_for_bytes(&stats) {
        IntEncoding::Dict(DictInt::encode(values))
    } else {
        IntEncoding::For(ForInt::encode(values))
    }
}

/// Extended chooser over all implemented schemes (used in ablations; the
/// paper's experiments use [`choose_int_baseline`]).
pub fn choose_int_full(values: &[i64]) -> IntEncoding {
    let candidates = [
        IntEncoding::For(ForInt::encode(values)),
        IntEncoding::Dict(DictInt::encode(values)),
        IntEncoding::Rle(RleInt::encode(values)),
        IntEncoding::Delta(DeltaInt::encode(values)),
        IntEncoding::Frequency(FrequencyInt::encode(values, 16)),
        IntEncoding::Plain(PlainInt::encode(values)),
    ];
    candidates
        .into_iter()
        .min_by_key(IntAccess::compressed_bytes)
        .expect("non-empty candidate list")
}

/// String columns always use Dict in the baseline.
pub fn choose_str_baseline(values: impl IntoIterator<Item = impl AsRef<str>>) -> DictStr {
    let owned: Vec<String> = values.into_iter().map(|s| s.as_ref().to_owned()).collect();
    DictStr::encode(owned.iter().map(String::as_str))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_prefers_for_on_dense_range() {
        // Dates: dense small range, few-distinct but range-packed FOR wins
        // (dict would store 2500 distinct values * 8B).
        let values: Vec<i64> = (0..100_000).map(|i| 8_035 + (i % 2_500) as i64).collect();
        let enc = choose_int_baseline(&values);
        assert_eq!(enc.scheme(), "for");
    }

    #[test]
    fn baseline_prefers_dict_on_sparse_values() {
        // Few distinct, widely spread values: dict wins.
        let values: Vec<i64> = (0..100_000)
            .map(|i| ((i % 4) as i64) * 1_000_000_007)
            .collect();
        let enc = choose_int_baseline(&values);
        assert_eq!(enc.scheme(), "dict");
    }

    #[test]
    fn estimates_match_actual() {
        let values: Vec<i64> = (0..10_000).map(|i| (i % 97) as i64 * 13).collect();
        let stats = IntStats::compute(&values);
        assert_eq!(
            estimate_for_bytes(&stats),
            ForInt::encode(&values).compressed_bytes()
        );
        assert_eq!(
            estimate_dict_bytes(&stats),
            DictInt::encode(&values).compressed_bytes()
        );
    }

    #[test]
    fn full_chooser_never_worse_than_baseline() {
        for gen in [
            |i: usize| i as i64,              // sorted: delta wins
            |i: usize| (i / 1000) as i64,     // runs: rle wins
            |i: usize| (i as i64 * 7919) % 3, // few distinct
            |i: usize| (i as i64).wrapping_mul(0x9E3779B97F4A7C15u64 as i64), // random
        ] {
            let values: Vec<i64> = (0..5_000).map(gen).collect();
            let full = choose_int_full(&values);
            let base = choose_int_baseline(&values);
            assert!(full.compressed_bytes() <= base.compressed_bytes());
            // And both decode correctly.
            let mut a = Vec::new();
            let mut b = Vec::new();
            full.decode_into(&mut a);
            base.decode_into(&mut b);
            assert_eq!(a, values);
            assert_eq!(b, values);
        }
    }

    #[test]
    fn enum_serialization_roundtrip_all_variants() {
        let values: Vec<i64> = (0..300).map(|i| (i % 10) as i64 * 5).collect();
        let variants = vec![
            IntEncoding::Plain(PlainInt::encode(&values)),
            IntEncoding::For(ForInt::encode(&values)),
            IntEncoding::Dict(DictInt::encode(&values)),
            IntEncoding::Rle(RleInt::encode(&values)),
            IntEncoding::Delta(DeltaInt::encode(&values)),
            IntEncoding::Frequency(FrequencyInt::encode(&values, 4)),
        ];
        for enc in variants {
            let mut buf = Vec::new();
            enc.write_to(&mut buf);
            assert_eq!(buf.len(), enc.serialized_len(), "{}", enc.scheme());
            let back = IntEncoding::read_from(&mut buf.as_slice()).unwrap();
            assert_eq!(back, enc);
            let mut out = Vec::new();
            back.decode_into(&mut out);
            assert_eq!(out, values);
        }
    }

    #[test]
    fn unknown_tag_rejected() {
        let buf = [99u8, 0, 0];
        assert!(IntEncoding::read_from(&mut &buf[..]).is_err());
    }

    #[test]
    fn str_baseline_is_dict() {
        let enc = choose_str_baseline(["a", "b", "a"]);
        assert_eq!(enc.distinct(), 2);
    }
}
