//! Delta encoding with miniblock restarts ("checkpoints").
//!
//! Stores zig-zag deltas between consecutive values, bit-packed at a global
//! width, with the first value of every [`MINIBLOCK`]-sized miniblock stored
//! verbatim. Random access decodes at most `MINIBLOCK - 1` deltas — the
//! checkpoint cost the paper cites when excluding Delta from its baseline.

use bytes::{Buf, BufMut};
use corra_columnar::bitpack::{zigzag_decode, zigzag_encode, BitPackedVec, UNPACK_CHUNK};
use corra_columnar::error::{Error, Result};
use corra_columnar::predicate::IntRange;
use corra_columnar::stats::ZoneMap;

use corra_columnar::aggregate::IntAggState;
use corra_columnar::selection::SelectionVector;

use crate::aggregate::AggInt;
use crate::filter::FilterInt;
use crate::traits::{IntAccess, Validate};

/// Rows per miniblock (restart interval).
pub const MINIBLOCK: usize = 128;

/// Delta-encoded integer column with per-miniblock restart values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaInt {
    len: usize,
    /// First value of each miniblock.
    restarts: Vec<i64>,
    /// Zig-zag deltas for all rows (0 at restart positions), bit-packed.
    deltas: BitPackedVec,
}

impl DeltaInt {
    /// Encodes `values`.
    pub fn encode(values: &[i64]) -> Self {
        let mut restarts = Vec::with_capacity(values.len().div_ceil(MINIBLOCK));
        let mut deltas = Vec::with_capacity(values.len());
        for (i, &v) in values.iter().enumerate() {
            if i % MINIBLOCK == 0 {
                restarts.push(v);
                deltas.push(0);
            } else {
                deltas.push(zigzag_encode(v.wrapping_sub(values[i - 1])));
            }
        }
        Self {
            len: values.len(),
            restarts,
            deltas: BitPackedVec::pack_minimal(&deltas),
        }
    }

    /// Delta bit width.
    pub fn bits(&self) -> u8 {
        self.deltas.bits()
    }

    /// Serialized length of [`write_to`](Self::write_to).
    pub fn serialized_len(&self) -> usize {
        8 + 8 + self.restarts.len() * 8 + self.deltas.serialized_len()
    }

    /// Writes `len (u64) | n_restarts (u64) | restarts | deltas`.
    pub fn write_to(&self, buf: &mut impl BufMut) {
        buf.put_u64_le(self.len as u64);
        buf.put_u64_le(self.restarts.len() as u64);
        for &v in &self.restarts {
            buf.put_i64_le(v);
        }
        self.deltas.write_to(buf);
    }

    /// Reads back a [`write_to`](Self::write_to) payload.
    pub fn read_from(buf: &mut impl Buf) -> Result<Self> {
        if buf.remaining() < 16 {
            return Err(Error::corrupt("delta header truncated"));
        }
        let len = buf.get_u64_le() as usize;
        let n_restarts = buf.get_u64_le() as usize;
        if n_restarts != len.div_ceil(MINIBLOCK) {
            return Err(Error::corrupt("delta restart count mismatch"));
        }
        if buf.remaining() < n_restarts.saturating_mul(8) {
            return Err(Error::corrupt("delta restarts truncated"));
        }
        let mut restarts = Vec::with_capacity(n_restarts);
        for _ in 0..n_restarts {
            restarts.push(buf.get_i64_le());
        }
        let deltas = BitPackedVec::read_from(buf)?;
        if deltas.len() != len {
            return Err(Error::corrupt("delta payload length mismatch"));
        }
        Ok(Self {
            len,
            restarts,
            deltas,
        })
    }
}

impl IntAccess for DeltaInt {
    fn len(&self) -> usize {
        self.len
    }

    fn get(&self, i: usize) -> i64 {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        let block = i / MINIBLOCK;
        let mut v = self.restarts[block];
        for j in (block * MINIBLOCK + 1)..=i {
            v = v.wrapping_add(zigzag_decode(self.deltas.get_unchecked_len(j)));
        }
        v
    }

    fn decode_into(&self, out: &mut Vec<i64>) {
        out.clear();
        out.reserve(self.len);
        // Batched delta unpack; the prefix sum with miniblock restarts runs
        // over cache-hot decoded chunks (MINIBLOCK divides the chunk size).
        let mut v = 0i64;
        self.deltas.unpack_chunks(|start, chunk| {
            for (j, &d) in chunk.iter().enumerate() {
                let i = start + j;
                if i % MINIBLOCK == 0 {
                    v = self.restarts[i / MINIBLOCK];
                } else {
                    v = v.wrapping_add(zigzag_decode(d));
                }
                out.push(v);
            }
        });
    }

    fn compressed_bytes(&self) -> usize {
        self.restarts.len() * 8 + 1 + self.deltas.tight_bytes()
    }
}

impl FilterInt for DeltaInt {
    /// Delta has no per-row compressed-domain shortcut: values only exist as
    /// prefix sums. The kernel therefore falls back to a *streaming*
    /// reconstruction — a single sequential pass with miniblock restarts —
    /// which never pays the O(MINIBLOCK) random-access cost of `get`. Each
    /// reconstructed chunk is compared through the SIMD range kernel.
    fn filter_into(&self, range: &IntRange, out: &mut Vec<u32>) {
        out.clear();
        let mut v = 0i64;
        let mut vals = [0i64; UNPACK_CHUNK];
        self.deltas.unpack_chunks(|start, chunk| {
            for (j, &d) in chunk.iter().enumerate() {
                let i = start + j;
                if i % MINIBLOCK == 0 {
                    v = self.restarts[i / MINIBLOCK];
                } else {
                    v = v.wrapping_add(zigzag_decode(d));
                }
                vals[j] = v;
            }
            crate::filter::filter_i64_slice(&vals[..chunk.len()], range, start as u32, out);
        });
    }

    /// Tight bounds would require the same streaming pass as the kernel
    /// itself, so no cheap zone map exists for Delta.
    fn value_bounds(&self) -> Option<ZoneMap> {
        None
    }
}

impl AggInt for DeltaInt {
    /// One streaming pass with miniblock restarts, folding each
    /// reconstructed value as it appears — no materialized vector, and
    /// never the O(MINIBLOCK) random-access cost of `get`.
    fn aggregate_into(&self, state: &mut IntAggState) {
        let mut v = 0i64;
        self.deltas.unpack_chunks(|start, chunk| {
            for (j, &d) in chunk.iter().enumerate() {
                let i = start + j;
                if i % MINIBLOCK == 0 {
                    v = self.restarts[i / MINIBLOCK];
                } else {
                    v = v.wrapping_add(zigzag_decode(d));
                }
                state.update(v);
            }
        });
    }

    /// Streams the whole column (values only exist as prefix sums) and
    /// folds rows matched by a sorted walk over the selection.
    fn aggregate_selected(&self, sel: &SelectionVector, state: &mut IntAggState) {
        // Positions are sorted, so one check on the last bounds them all.
        if let Some(&last) = sel.positions().last() {
            assert!(
                (last as usize) < self.len,
                "position {last} out of bounds (len {})",
                self.len
            );
        } else {
            return;
        }
        let pos = sel.positions();
        let mut p = 0usize;
        let mut v = 0i64;
        self.deltas.unpack_chunks(|start, chunk| {
            if p >= pos.len() {
                return;
            }
            for (j, &d) in chunk.iter().enumerate() {
                let i = start + j;
                if i % MINIBLOCK == 0 {
                    v = self.restarts[i / MINIBLOCK];
                } else {
                    v = v.wrapping_add(zigzag_decode(d));
                }
                if p < pos.len() && pos[p] == i as u32 {
                    state.update(v);
                    p += 1;
                }
            }
        });
    }

    fn aggregate_grouped(&self, group_of: &[u32], states: &mut [IntAggState]) {
        assert_eq!(group_of.len(), self.len, "group codes misaligned");
        let mut v = 0i64;
        self.deltas.unpack_chunks(|start, chunk| {
            for (j, &d) in chunk.iter().enumerate() {
                let i = start + j;
                if i % MINIBLOCK == 0 {
                    v = self.restarts[i / MINIBLOCK];
                } else {
                    v = v.wrapping_add(zigzag_decode(d));
                }
                states[group_of[i] as usize].update(v);
            }
        });
    }
}

impl Validate for DeltaInt {
    fn validate(&self) -> Result<()> {
        if self.restarts.len() != self.len.div_ceil(MINIBLOCK) {
            return Err(Error::corrupt("delta restart count mismatch"));
        }
        if self.deltas.len() != self.len {
            return Err(Error::corrupt("delta length mismatch"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corra_columnar::selection::SelectionVector;

    #[test]
    fn roundtrip_sorted() {
        let values: Vec<i64> = (0..1000).map(|i| i * 3 + 100).collect();
        let enc = DeltaInt::encode(&values);
        // Constant delta of 3 -> zigzag 6 -> 3 bits.
        assert_eq!(enc.bits(), 3);
        let mut out = Vec::new();
        enc.decode_into(&mut out);
        assert_eq!(out, values);
    }

    #[test]
    fn random_access_across_miniblocks() {
        let values: Vec<i64> = (0..500).map(|i| (i * i) as i64 % 977).collect();
        let enc = DeltaInt::encode(&values);
        for i in [0, 1, 127, 128, 129, 255, 256, 300, 499] {
            assert_eq!(enc.get(i), values[i], "row {i}");
        }
    }

    #[test]
    fn unsorted_values() {
        let values = vec![100i64, -50, 700, 0, 3];
        let enc = DeltaInt::encode(&values);
        let mut out = Vec::new();
        enc.decode_into(&mut out);
        assert_eq!(out, values);
    }

    #[test]
    fn wrapping_extremes() {
        let values = vec![i64::MIN, i64::MAX, 0, i64::MIN];
        let enc = DeltaInt::encode(&values);
        let mut out = Vec::new();
        enc.decode_into(&mut out);
        assert_eq!(out, values);
        assert_eq!(enc.get(3), i64::MIN);
    }

    #[test]
    fn empty_and_single() {
        let enc = DeltaInt::encode(&[]);
        assert!(enc.is_empty());
        let enc = DeltaInt::encode(&[42]);
        assert_eq!(enc.len(), 1);
        assert_eq!(enc.get(0), 42);
        assert_eq!(enc.bits(), 0); // only the restart, delta payload all zero
    }

    #[test]
    fn exact_miniblock_boundary() {
        let values: Vec<i64> = (0..(MINIBLOCK as i64 * 2)).collect();
        let enc = DeltaInt::encode(&values);
        let mut out = Vec::new();
        enc.decode_into(&mut out);
        assert_eq!(out, values);
        assert_eq!(enc.get(MINIBLOCK - 1), (MINIBLOCK - 1) as i64);
        assert_eq!(enc.get(MINIBLOCK), MINIBLOCK as i64);
    }

    #[test]
    fn gather() {
        let values: Vec<i64> = (0..1000).map(|i| i / 3).collect();
        let enc = DeltaInt::encode(&values);
        let sel = SelectionVector::new(vec![10, 400, 999]);
        let mut out = Vec::new();
        enc.gather_into(&sel, &mut out);
        assert_eq!(out, vec![values[10], values[400], values[999]]);
    }

    #[test]
    fn filter_streams_across_miniblocks() {
        let values: Vec<i64> = (0..500).map(|i| (i * i) as i64 % 977).collect();
        let enc = DeltaInt::encode(&values);
        let mut out = Vec::new();
        for range in [
            IntRange::new(0, 100),
            IntRange::negated(500, 976),
            IntRange::new(977, i64::MAX),
        ] {
            enc.filter_into(&range, &mut out);
            assert_eq!(
                out,
                crate::filter::filter_naive(&values, &range),
                "{range:?}"
            );
        }
        assert!(enc.value_bounds().is_none());
    }

    #[test]
    fn serialization_roundtrip() {
        let values: Vec<i64> = (0..300).map(|i| i * 7 - 1000).collect();
        let enc = DeltaInt::encode(&values);
        let mut buf = Vec::new();
        enc.write_to(&mut buf);
        assert_eq!(buf.len(), enc.serialized_len());
        let back = DeltaInt::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(back, enc);
        assert!(DeltaInt::read_from(&mut &buf[..12]).is_err());
    }

    #[test]
    fn sorted_data_beats_for() {
        // Sorted timestamps with small steps: delta >> FOR.
        let values: Vec<i64> = (0..10_000).map(|i| 1_600_000_000 + i * 2).collect();
        let delta = DeltaInt::encode(&values);
        let ffor = crate::ffor::ForInt::encode(&values);
        assert!(delta.compressed_bytes() < ffor.compressed_bytes());
    }
}
