//! Compressed-domain aggregate kernels: the fold side of pushdown.
//!
//! Where [`crate::filter::FilterInt`] turns a predicate into positions,
//! [`AggInt`] folds a column straight into a mergeable
//! [`IntAggState`] (`COUNT`/`SUM`/`MIN`/`MAX` in one pass) without
//! materializing a single `i64` vector:
//!
//! * **FOR** folds in the packed offset domain: offsets accumulate into one
//!   `u128` and the frame base is added back *once* (`n · base`), not per
//!   row — the aggregate analogue of the fused `unpack_add_into` decode;
//! * **Dict** builds a code histogram and folds once per distinct value
//!   weighted by its count (`value · count`);
//! * **Frequency** histograms the hot codes, removes the padding codes at
//!   exception rows, and folds exceptions verbatim;
//! * **RLE** folds once per *run* (`value · run_len`) — O(runs), not
//!   O(rows);
//! * **Delta** streams with miniblock restarts, folding each reconstructed
//!   value without a second pass;
//! * **Plain** is the trivial fold.
//!
//! [`AggStr`] is the string analogue for `COUNT` and lexicographic
//! `MIN`/`MAX`: dictionary columns compare each distinct string against the
//! bounds once, weighted by its occurrence count.
//!
//! All kernels fold into states that merge associatively, so per-block
//! partials combine deterministically in the morsel-parallel driver.

use corra_columnar::aggregate::{IntAggState, StrAggState};
use corra_columnar::selection::SelectionVector;
use corra_columnar::stats::ZoneMap;

/// Whole-column and selected-row aggregation over a compressed integer
/// column.
///
/// `aggregate_selected` follows the same contract as
/// [`crate::traits::IntAccess::gather_into`]: positions are sorted and the
/// kernel panics (like the scalar getter would) if the last position is out
/// of range. `aggregate_grouped` requires `group_of.len()` to equal the
/// column length and every code to index `states`.
pub trait AggInt {
    /// Folds every row into `state`.
    fn aggregate_into(&self, state: &mut IntAggState);

    /// Folds the rows at the selected positions into `state`.
    fn aggregate_selected(&self, sel: &SelectionVector, state: &mut IntAggState);

    /// Folds row `i` into `states[group_of[i]]` for every row — the grouped
    /// aggregation kernel. Callers route filtered-out rows to a trailing
    /// discard group rather than passing a selection.
    fn aggregate_grouped(&self, group_of: &[u32], states: &mut [IntAggState]);

    /// *Exact* min/max bounds of the stored values (`None` when empty), in
    /// contrast to [`crate::filter::FilterInt::value_bounds`], which may be
    /// covering-but-loose (FOR's `base + 2^bits - 1`). Costs at most one
    /// streaming pass; codecs with cheap exact statistics (Dict, RLE,
    /// Frequency) override it with O(distinct)/O(runs) paths.
    ///
    /// Exactness assumes the canonical encoder invariants (e.g. every
    /// dictionary entry occurs in some row), which hold for every
    /// `encode`-produced column.
    fn exact_bounds(&self) -> Option<ZoneMap> {
        let mut state = IntAggState::default();
        self.aggregate_into(&mut state);
        Some(ZoneMap {
            min: state.min?,
            max: state.max?,
        })
    }
}

/// Whole-column and selected-row aggregation (`COUNT`, lexicographic
/// `MIN`/`MAX`) over a compressed string column. Contracts as [`AggInt`].
pub trait AggStr {
    /// Folds every row into `state`.
    fn aggregate_into(&self, state: &mut StrAggState);

    /// Folds the rows at the selected positions into `state`.
    fn aggregate_selected(&self, sel: &SelectionVector, state: &mut StrAggState);

    /// Folds row `i` into `states[group_of[i]]` for every row.
    fn aggregate_grouped(&self, group_of: &[u32], states: &mut [StrAggState]);
}

/// Reference comparator used by the differential oracle tests:
/// decompress-then-fold over raw values.
pub fn aggregate_naive(values: &[i64]) -> IntAggState {
    let mut state = IntAggState::default();
    for &v in values {
        state.update(v);
    }
    state
}

/// Decompress-then-fold oracle over the selected positions.
pub fn aggregate_naive_selected(values: &[i64], sel: &SelectionVector) -> IntAggState {
    let mut state = IntAggState::default();
    for &p in sel.positions() {
        state.update(values[p as usize]);
    }
    state
}

/// Decompress-then-fold oracle for grouped aggregation.
pub fn aggregate_naive_grouped(
    values: &[i64],
    group_of: &[u32],
    n_groups: usize,
) -> Vec<IntAggState> {
    let mut states = vec![IntAggState::default(); n_groups];
    for (&v, &g) in values.iter().zip(group_of) {
        states[g as usize].update(v);
    }
    states
}
