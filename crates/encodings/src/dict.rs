//! Dictionary encoding followed by bit-packing, for integers and strings.
//!
//! The second half of the paper's baseline. Distinct values are collected
//! into a dictionary (sorted for integers so codes preserve order; flattened
//! [`StringPool`] for strings, per §3: "To store column strings, we use Dict
//! encoding and pack the distinct strings into a flattened array"), and each
//! row stores a bit-packed code.

use bytes::{Buf, BufMut};
use corra_columnar::bitpack::BitPackedVec;
use corra_columnar::error::{Error, Result};
use corra_columnar::predicate::IntRange;
use corra_columnar::selection::SelectionVector;
use corra_columnar::stats::ZoneMap;
use corra_columnar::strings::{StringDictBuilder, StringPool};
use rustc_hash::FxHashMap;

use corra_columnar::aggregate::{IntAggState, StrAggState};

use crate::aggregate::{AggInt, AggStr};
use crate::filter::{FilterInt, FilterStr};
use crate::traits::{CodeOrder, IntAccess, StrAccess, Validate};

/// Dictionary-encoded integer column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DictInt {
    /// Sorted distinct values.
    dict: Vec<i64>,
    /// Per-row bit-packed code into `dict`.
    codes: BitPackedVec,
}

impl DictInt {
    /// Encodes `values`.
    pub fn encode(values: &[i64]) -> Self {
        let mut dict: Vec<i64> = values.to_vec();
        dict.sort_unstable();
        dict.dedup();
        let index: FxHashMap<i64, u32> = dict
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i as u32))
            .collect();
        let codes: Vec<u64> = values.iter().map(|v| index[v] as u64).collect();
        Self {
            dict,
            codes: BitPackedVec::pack_minimal(&codes),
        }
    }

    /// The sorted dictionary.
    pub fn dict(&self) -> &[i64] {
        &self.dict
    }

    /// Code bit width.
    pub fn bits(&self) -> u8 {
        self.codes.bits()
    }

    /// The code at row `i` (used when a dict column serves as hierarchical
    /// reference).
    #[inline]
    pub fn code_at(&self, i: usize) -> u32 {
        self.codes.get(i) as u32
    }

    /// Code access skipping the bounds assertion (validated hot paths).
    #[inline]
    pub fn code_at_unchecked(&self, i: usize) -> u32 {
        self.codes.get_unchecked_len(i) as u32
    }

    /// Value access skipping the bounds assertion (validated hot paths).
    #[inline]
    pub fn value_at_unchecked(&self, i: usize) -> i64 {
        self.dict[self.codes.get_unchecked_len(i) as usize]
    }

    /// A hoisted-mask reader over the packed codes (hot query loops).
    #[inline]
    pub fn code_reader(&self) -> corra_columnar::bitpack::PackedReader<'_> {
        self.codes.reader()
    }

    /// Bulk-decodes the per-row codes into `out` (cleared first) through the
    /// batched kernels — the parent-code fetch of hierarchical encoding.
    pub fn codes_into(&self, out: &mut Vec<u32>) {
        out.clear();
        out.reserve(self.len());
        self.codes.unpack_chunks(|_, chunk| {
            out.extend(chunk.iter().map(|&c| c as u32));
        });
    }

    /// Serialized length of [`write_to`](Self::write_to).
    pub fn serialized_len(&self) -> usize {
        8 + self.dict.len() * 8 + self.codes.serialized_len()
    }

    /// Writes `dict_len (u64) | dict | codes`.
    pub fn write_to(&self, buf: &mut impl BufMut) {
        buf.put_u64_le(self.dict.len() as u64);
        for &v in &self.dict {
            buf.put_i64_le(v);
        }
        self.codes.write_to(buf);
    }

    /// Reads back a [`write_to`](Self::write_to) payload.
    pub fn read_from(buf: &mut impl Buf) -> Result<Self> {
        if buf.remaining() < 8 {
            return Err(Error::corrupt("dict-int header truncated"));
        }
        let dict_len = buf.get_u64_le() as usize;
        if buf.remaining() < dict_len.saturating_mul(8) {
            return Err(Error::corrupt("dict-int dictionary truncated"));
        }
        let mut dict = Vec::with_capacity(dict_len);
        for _ in 0..dict_len {
            dict.push(buf.get_i64_le());
        }
        let codes = BitPackedVec::read_from(buf)?;
        let out = Self { dict, codes };
        out.validate()?;
        Ok(out)
    }
}

impl IntAccess for DictInt {
    fn len(&self) -> usize {
        self.codes.len()
    }

    #[inline]
    fn get(&self, i: usize) -> i64 {
        self.dict[self.codes.get(i) as usize]
    }

    fn decode_into(&self, out: &mut Vec<i64>) {
        out.clear();
        out.reserve(self.len());
        self.codes.unpack_chunks(|_, chunk| {
            out.extend(chunk.iter().map(|&c| self.dict[c as usize]));
        });
    }

    fn gather_into(&self, sel: &SelectionVector, out: &mut Vec<i64>) {
        // Positions are sorted, so one check on the last bounds them all.
        if let Some(&last) = sel.positions().last() {
            assert!(
                (last as usize) < self.len(),
                "position {last} out of bounds (len {})",
                self.len()
            );
        }
        out.clear();
        out.reserve(sel.len());
        let r = self.codes.reader();
        for &p in sel.positions() {
            out.push(self.dict[r.get(p as usize) as usize]);
        }
    }

    fn compressed_bytes(&self) -> usize {
        // dictionary values + width byte + tightly packed codes.
        self.dict.len() * 8 + 1 + self.codes.tight_bytes()
    }
}

impl FilterInt for DictInt {
    /// The sorted dictionary turns a value range into a contiguous *code*
    /// interval (two binary searches — one evaluation per distinct value
    /// boundary), after which only bit-packed codes are compared.
    fn filter_into(&self, range: &IntRange, out: &mut Vec<u32>) {
        out.clear();
        let n = self.len();
        if range.interval_is_empty() {
            if range.negate {
                out.extend(0..n as u32);
            }
            return;
        }
        // Codes in [lo_code, hi_code) hold dictionary values inside the
        // positive interval.
        let lo_code = self.dict.partition_point(|&v| v < range.lo) as u64;
        let hi_code = self.dict.partition_point(|&v| v <= range.hi) as u64;
        if lo_code >= hi_code {
            if range.negate {
                out.extend(0..n as u32);
            }
            return;
        }
        // Fused decode+compare in the code domain (hi_code is exclusive and
        // lo_code < hi_code here, so the inclusive bound cannot underflow).
        self.codes
            .filter_range_into(lo_code, hi_code - 1, range.negate, out);
    }

    /// Exact bounds: the sorted dictionary's first and last entry.
    fn value_bounds(&self) -> Option<ZoneMap> {
        if self.is_empty() {
            return None;
        }
        Some(ZoneMap {
            min: *self.dict.first()?,
            max: *self.dict.last()?,
        })
    }
}

impl AggInt for DictInt {
    /// Histograms the bit-packed codes, then folds once per *distinct*
    /// value weighted by its count (`value · count`) — the per-row work is
    /// one counter increment, never an `i64` reconstruction.
    fn aggregate_into(&self, state: &mut IntAggState) {
        if self.is_empty() {
            return;
        }
        let mut counts = vec![0u64; self.dict.len()];
        self.codes.unpack_chunks(|_, chunk| {
            for &c in chunk {
                counts[c as usize] += 1;
            }
        });
        for (&v, &n) in self.dict.iter().zip(&counts) {
            state.update_n(v, n);
        }
    }

    fn aggregate_selected(&self, sel: &SelectionVector, state: &mut IntAggState) {
        // Positions are sorted, so one check on the last bounds them all.
        if let Some(&last) = sel.positions().last() {
            assert!(
                (last as usize) < self.len(),
                "position {last} out of bounds (len {})",
                self.len()
            );
        } else {
            return;
        }
        let mut counts = vec![0u64; self.dict.len()];
        let r = self.codes.reader();
        for &p in sel.positions() {
            counts[r.get(p as usize) as usize] += 1;
        }
        for (&v, &n) in self.dict.iter().zip(&counts) {
            state.update_n(v, n);
        }
    }

    fn aggregate_grouped(&self, group_of: &[u32], states: &mut [IntAggState]) {
        assert_eq!(group_of.len(), self.len(), "group codes misaligned");
        self.codes.unpack_chunks(|start, chunk| {
            for (j, &c) in chunk.iter().enumerate() {
                states[group_of[start + j] as usize].update(self.dict[c as usize]);
            }
        });
    }

    /// Exact bounds straight from the sorted dictionary (every entry of a
    /// canonically encoded dictionary occurs in some row).
    fn exact_bounds(&self) -> Option<ZoneMap> {
        self.value_bounds()
    }
}

impl CodeOrder for DictInt {
    /// The dictionary is strictly sorted (enforced by [`Validate`]), so
    /// code order *is* value order — the property `filter_into`'s code
    /// intervals, `value_bounds`, and the TOP-K code-domain fast path rely
    /// on.
    fn codes_are_ordered(&self) -> bool {
        true
    }
}

impl Validate for DictInt {
    fn validate(&self) -> Result<()> {
        if self.dict.windows(2).any(|w| w[0] >= w[1]) {
            return Err(Error::corrupt("dict-int dictionary not strictly sorted"));
        }
        for i in 0..self.codes.len() {
            if self.codes.get(i) as usize >= self.dict.len() {
                return Err(Error::corrupt("dict-int code out of range"));
            }
        }
        Ok(())
    }
}

/// Dictionary-encoded string column with a flattened distinct-string pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DictStr {
    /// Distinct strings in first-occurrence order.
    pool: StringPool,
    /// Per-row bit-packed code into `pool`.
    codes: BitPackedVec,
}

impl DictStr {
    /// Encodes an iterator of rows.
    pub fn encode<'a>(values: impl IntoIterator<Item = &'a str>) -> Self {
        let mut builder = StringDictBuilder::new();
        let codes: Vec<u64> = values
            .into_iter()
            .map(|s| builder.intern(s) as u64)
            .collect();
        Self {
            pool: builder.finish(),
            codes: BitPackedVec::pack_minimal(&codes),
        }
    }

    /// Encodes from a per-row pool.
    pub fn encode_pool(pool: &StringPool) -> Self {
        Self::encode(pool.iter())
    }

    /// The distinct-string pool (dictionary).
    pub fn pool(&self) -> &StringPool {
        &self.pool
    }

    /// Code bit width.
    pub fn bits(&self) -> u8 {
        self.codes.bits()
    }

    /// Number of distinct strings.
    pub fn distinct(&self) -> usize {
        self.pool.len()
    }

    /// The code at row `i` — the reference accessor used by hierarchical
    /// encoding ("the city … has been dict-encoded in advance", Alg. 1).
    #[inline]
    pub fn code_at(&self, i: usize) -> u32 {
        self.codes.get(i) as u32
    }

    /// Code access skipping the bounds assertion (validated hot paths).
    #[inline]
    pub fn code_at_unchecked(&self, i: usize) -> u32 {
        self.codes.get_unchecked_len(i) as u32
    }

    /// A hoisted-mask reader over the packed codes (hot query loops).
    #[inline]
    pub fn code_reader(&self) -> corra_columnar::bitpack::PackedReader<'_> {
        self.codes.reader()
    }

    /// Bulk-decodes the per-row codes into `out` (cleared first) through the
    /// batched kernels.
    pub fn codes_into(&self, out: &mut Vec<u32>) {
        out.clear();
        out.reserve(self.len());
        self.codes.unpack_chunks(|_, chunk| {
            out.extend(chunk.iter().map(|&c| c as u32));
        });
    }

    /// Bulk-decodes every row back into a per-row [`StringPool`].
    pub fn decode_into_pool(&self) -> StringPool {
        let mut pool = StringPool::with_capacity(self.len(), self.len() * 8);
        self.codes.unpack_chunks(|_, chunk| {
            for &c in chunk {
                pool.push(self.pool.get(c as usize));
            }
        });
        pool
    }

    /// Serialized length of [`write_to`](Self::write_to).
    pub fn serialized_len(&self) -> usize {
        self.pool.serialized_len() + self.codes.serialized_len()
    }

    /// Writes `pool | codes`.
    pub fn write_to(&self, buf: &mut impl BufMut) {
        self.pool.write_to(buf);
        self.codes.write_to(buf);
    }

    /// Reads back a [`write_to`](Self::write_to) payload.
    pub fn read_from(buf: &mut impl Buf) -> Result<Self> {
        let pool = StringPool::read_from(buf)?;
        let codes = BitPackedVec::read_from(buf)?;
        let out = Self { pool, codes };
        out.validate()?;
        Ok(out)
    }
}

impl StrAccess for DictStr {
    fn len(&self) -> usize {
        self.codes.len()
    }

    #[inline]
    fn get(&self, i: usize) -> &str {
        self.pool.get(self.codes.get(i) as usize)
    }

    fn gather_into(&self, sel: &SelectionVector, out: &mut Vec<String>) {
        // Positions are sorted, so one check on the last bounds them all.
        if let Some(&last) = sel.positions().last() {
            assert!(
                (last as usize) < self.len(),
                "position {last} out of bounds (len {})",
                self.len()
            );
        }
        out.clear();
        out.reserve(sel.len());
        let r = self.codes.reader();
        for &p in sel.positions() {
            out.push(self.pool.get(r.get(p as usize) as usize).to_owned());
        }
    }

    fn compressed_bytes(&self) -> usize {
        // flattened distinct strings + offsets + width byte + packed codes.
        self.pool.heap_bytes() + 1 + self.codes.tight_bytes()
    }
}

impl FilterStr for DictStr {
    /// Evaluates the equality once per distinct string (one pool walk to
    /// find the matching code), then compares bit-packed codes.
    fn filter_eq_into(&self, value: &str, negate: bool, out: &mut Vec<u32>) {
        out.clear();
        let n = self.len();
        // Pool entries are distinct, so at most one code matches.
        let target = (0..self.pool.len()).find(|&k| self.pool.get(k) == value);
        let Some(target) = target else {
            if negate {
                out.extend(0..n as u32);
            }
            return;
        };
        let target = target as u64;
        self.codes.unpack_chunks(|start, chunk| {
            for (j, &c) in chunk.iter().enumerate() {
                if (c == target) != negate {
                    out.push((start + j) as u32);
                }
            }
        });
    }
}

impl AggStr for DictStr {
    /// Histograms the codes, then compares each *distinct* string against
    /// the running bounds exactly once, weighted by its count.
    fn aggregate_into(&self, state: &mut StrAggState) {
        if self.is_empty() {
            return;
        }
        let mut counts = vec![0u64; self.pool.len().max(1)];
        self.codes.unpack_chunks(|_, chunk| {
            for &c in chunk {
                counts[c as usize] += 1;
            }
        });
        for (k, &n) in counts.iter().enumerate() {
            if n > 0 {
                state.update_n(self.pool.get(k), n);
            }
        }
    }

    fn aggregate_selected(&self, sel: &SelectionVector, state: &mut StrAggState) {
        // Positions are sorted, so one check on the last bounds them all.
        if let Some(&last) = sel.positions().last() {
            assert!(
                (last as usize) < self.len(),
                "position {last} out of bounds (len {})",
                self.len()
            );
        } else {
            return;
        }
        let mut counts = vec![0u64; self.pool.len().max(1)];
        let r = self.codes.reader();
        for &p in sel.positions() {
            counts[r.get(p as usize) as usize] += 1;
        }
        for (k, &n) in counts.iter().enumerate() {
            if n > 0 {
                state.update_n(self.pool.get(k), n);
            }
        }
    }

    fn aggregate_grouped(&self, group_of: &[u32], states: &mut [StrAggState]) {
        assert_eq!(group_of.len(), self.len(), "group codes misaligned");
        self.codes.unpack_chunks(|start, chunk| {
            for (j, &c) in chunk.iter().enumerate() {
                states[group_of[start + j] as usize].update(self.pool.get(c as usize));
            }
        });
    }
}

impl CodeOrder for DictStr {
    /// The pool is in *first-occurrence* order, so code comparison says
    /// nothing about string order. Range-style reasoning (zones, ORDER BY,
    /// code-interval filters) must not run in this code domain; only
    /// equality (code identity) is meaningful.
    fn codes_are_ordered(&self) -> bool {
        false
    }
}

impl Validate for DictStr {
    fn validate(&self) -> Result<()> {
        for i in 0..self.codes.len() {
            if self.codes.get(i) as usize >= self.pool.len() {
                return Err(Error::corrupt("dict-str code out of range"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corra_columnar::selection::SelectionVector;

    #[test]
    fn dict_int_roundtrip() {
        let values = vec![500i64, 100, 500, 300, 100, 500];
        let enc = DictInt::encode(&values);
        assert_eq!(enc.dict(), &[100, 300, 500]);
        assert_eq!(enc.bits(), 2);
        let mut out = Vec::new();
        enc.decode_into(&mut out);
        assert_eq!(out, values);
        assert_eq!(enc.get(3), 300);
    }

    #[test]
    fn dict_int_codes_preserve_order() {
        // Sorted dictionary means code comparison == value comparison.
        let enc = DictInt::encode(&[30, 10, 20]);
        assert!(enc.code_at(1) < enc.code_at(2));
        assert!(enc.code_at(2) < enc.code_at(0));
    }

    #[test]
    fn dict_int_single_value() {
        let enc = DictInt::encode(&[7; 100]);
        assert_eq!(enc.bits(), 0);
        assert_eq!(enc.get(50), 7);
        // dictionary 8B + width byte
        assert_eq!(enc.compressed_bytes(), 9);
    }

    #[test]
    fn dict_int_serialization() {
        let enc = DictInt::encode(&[5, 1, 5, 9, 1]);
        let mut buf = Vec::new();
        enc.write_to(&mut buf);
        assert_eq!(buf.len(), enc.serialized_len());
        let back = DictInt::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(back, enc);
    }

    #[test]
    fn dict_int_rejects_corrupt_dictionary() {
        let enc = DictInt::encode(&[1, 2, 3]);
        let mut buf = Vec::new();
        enc.write_to(&mut buf);
        // Swap first two dictionary entries to break sortedness.
        let (a, b) = (buf[8], buf[16]);
        buf[8] = b;
        buf[16] = a;
        assert!(DictInt::read_from(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn dict_str_roundtrip() {
        let enc = DictStr::encode(["NYC", "Naples", "NYC", "Cortland", "NYC"]);
        assert_eq!(enc.len(), 5);
        assert_eq!(enc.distinct(), 3);
        assert_eq!(enc.bits(), 2);
        assert_eq!(enc.get(0), "NYC");
        assert_eq!(enc.get(3), "Cortland");
        // First-occurrence order codes.
        assert_eq!(enc.code_at(0), 0);
        assert_eq!(enc.code_at(1), 1);
        assert_eq!(enc.code_at(3), 2);
    }

    #[test]
    fn dict_str_gather() {
        let enc = DictStr::encode(["a", "b", "c", "a"]);
        let sel = SelectionVector::new(vec![1, 3]);
        let mut out = Vec::new();
        enc.gather_into(&sel, &mut out);
        assert_eq!(out, vec!["b".to_owned(), "a".to_owned()]);
    }

    #[test]
    fn dict_str_serialization() {
        let enc = DictStr::encode(["x", "yy", "x", "zzz"]);
        let mut buf = Vec::new();
        enc.write_to(&mut buf);
        assert_eq!(buf.len(), enc.serialized_len());
        let back = DictStr::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(back, enc);
        assert!(DictStr::read_from(&mut &buf[..3]).is_err());
    }

    #[test]
    fn dict_str_size_accounting() {
        let enc = DictStr::encode(["ab", "cd", "ab", "ab"]);
        // pool: 4 bytes + 3 offsets * 4 = 16; codes: 1 bit * 4 rows -> 1 byte (+1 width byte)
        assert_eq!(enc.compressed_bytes(), 4 + 12 + 1 + 1);
    }

    #[test]
    fn empty_columns() {
        let enc = DictInt::encode(&[]);
        assert!(enc.is_empty());
        let enc = DictStr::encode([]);
        assert!(enc.is_empty());
    }

    #[test]
    fn dict_int_filter_code_interval() {
        let values = vec![500i64, 100, 500, 300, 100, 500, 900];
        let enc = DictInt::encode(&values);
        let mut out = Vec::new();
        for range in [
            IntRange::new(100, 300),
            IntRange::new(150, 450),
            IntRange::negated(500, 500),
            IntRange::new(901, i64::MAX),
            IntRange::empty(),
            IntRange::all(),
        ] {
            enc.filter_into(&range, &mut out);
            assert_eq!(
                out,
                crate::filter::filter_naive(&values, &range),
                "{range:?}"
            );
        }
        let zone = enc.value_bounds().unwrap();
        assert_eq!((zone.min, zone.max), (100, 900));
        assert!(DictInt::encode(&[]).value_bounds().is_none());
    }

    #[test]
    fn code_order_capability() {
        // Int dictionaries are sorted: code order is value order.
        assert!(DictInt::encode(&[30, 10, 20]).codes_are_ordered());
        // String pools are first-occurrence-ordered: code order disagrees
        // with value order, and every consumer must gate on the capability
        // instead of assuming sortedness.
        let enc = DictStr::encode(["zebra", "apple"]);
        assert!(!enc.codes_are_ordered());
        assert!(enc.code_at(0) < enc.code_at(1));
        assert!(enc.get(0) > enc.get(1));
    }

    #[test]
    fn dict_str_filter_eq() {
        let enc = DictStr::encode(["NYC", "Naples", "NYC", "Cortland"]);
        let mut out = Vec::new();
        enc.filter_eq_into("NYC", false, &mut out);
        assert_eq!(out, vec![0, 2]);
        enc.filter_eq_into("NYC", true, &mut out);
        assert_eq!(out, vec![1, 3]);
        enc.filter_eq_into("Miami", false, &mut out);
        assert!(out.is_empty());
        enc.filter_eq_into("Miami", true, &mut out);
        assert_eq!(out, vec![0, 1, 2, 3]);
    }
}
