//! Frequency encoding: store the hot values compactly, exceptions aside.
//!
//! One of the "by now already ad-hoc" vertical schemes the paper lists in its
//! introduction. The top-k most frequent values get dense codes; every other
//! row is an exception stored as (position, value) — structurally the same
//! two-array exception region Corra's outlier storage uses (Fig. 4), which is
//! why it lives here as a baseline relative.

use bytes::{Buf, BufMut};
use corra_columnar::bitpack::BitPackedVec;
use corra_columnar::error::{Error, Result};
use corra_columnar::predicate::IntRange;
use corra_columnar::stats::ZoneMap;
use rustc_hash::FxHashMap;

use corra_columnar::aggregate::IntAggState;
use corra_columnar::selection::SelectionVector;

use crate::aggregate::AggInt;
use crate::filter::FilterInt;
use crate::traits::{IntAccess, Validate};

/// Frequency-encoded integer column.
///
/// Rows holding one of the `hot` values store that value's code; exception
/// rows store code 0 (any code — the exception index disambiguates, the same
/// trick Corra's multi-reference scheme uses to avoid a sentinel).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrequencyInt {
    /// The frequent values, code = position.
    hot: Vec<i64>,
    /// Per-row code into `hot`.
    codes: BitPackedVec,
    /// Sorted exception positions.
    exc_pos: Vec<u32>,
    /// Exception values aligned with `exc_pos`.
    exc_val: Vec<i64>,
}

impl FrequencyInt {
    /// Encodes keeping at most `max_hot` frequent values.
    pub fn encode(values: &[i64], max_hot: usize) -> Self {
        let mut counts: FxHashMap<i64, u32> = FxHashMap::default();
        for &v in values {
            *counts.entry(v).or_default() += 1;
        }
        let mut by_freq: Vec<(i64, u32)> = counts.into_iter().collect();
        // Sort by descending frequency, ties by value for determinism.
        by_freq.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let hot: Vec<i64> = by_freq
            .iter()
            .take(max_hot.max(1))
            .map(|&(v, _)| v)
            .collect();
        let index: FxHashMap<i64, u64> = hot
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i as u64))
            .collect();
        let mut codes = Vec::with_capacity(values.len());
        let mut exc_pos = Vec::new();
        let mut exc_val = Vec::new();
        for (i, &v) in values.iter().enumerate() {
            match index.get(&v) {
                Some(&c) => codes.push(c),
                None => {
                    codes.push(0);
                    exc_pos.push(i as u32);
                    exc_val.push(v);
                }
            }
        }
        Self {
            hot,
            codes: BitPackedVec::pack_minimal(&codes),
            exc_pos,
            exc_val,
        }
    }

    /// Number of exception rows.
    pub fn exceptions(&self) -> usize {
        self.exc_pos.len()
    }

    /// Code bit width.
    pub fn bits(&self) -> u8 {
        self.codes.bits()
    }

    /// Serialized length of [`write_to`](Self::write_to).
    pub fn serialized_len(&self) -> usize {
        8 + self.hot.len() * 8 + self.codes.serialized_len() + 8 + self.exc_pos.len() * 12
    }

    /// Writes `n_hot | hot | codes | n_exc | exc_pos | exc_val`.
    pub fn write_to(&self, buf: &mut impl BufMut) {
        buf.put_u64_le(self.hot.len() as u64);
        for &v in &self.hot {
            buf.put_i64_le(v);
        }
        self.codes.write_to(buf);
        buf.put_u64_le(self.exc_pos.len() as u64);
        for &p in &self.exc_pos {
            buf.put_u32_le(p);
        }
        for &v in &self.exc_val {
            buf.put_i64_le(v);
        }
    }

    /// Reads back a [`write_to`](Self::write_to) payload.
    pub fn read_from(buf: &mut impl Buf) -> Result<Self> {
        if buf.remaining() < 8 {
            return Err(Error::corrupt("frequency header truncated"));
        }
        let n_hot = buf.get_u64_le() as usize;
        if buf.remaining() < n_hot.saturating_mul(8) {
            return Err(Error::corrupt("frequency hot values truncated"));
        }
        let mut hot = Vec::with_capacity(n_hot);
        for _ in 0..n_hot {
            hot.push(buf.get_i64_le());
        }
        let codes = BitPackedVec::read_from(buf)?;
        if buf.remaining() < 8 {
            return Err(Error::corrupt("frequency exception header truncated"));
        }
        let n_exc = buf.get_u64_le() as usize;
        if buf.remaining() < n_exc.saturating_mul(12) {
            return Err(Error::corrupt("frequency exceptions truncated"));
        }
        let mut exc_pos = Vec::with_capacity(n_exc);
        for _ in 0..n_exc {
            exc_pos.push(buf.get_u32_le());
        }
        let mut exc_val = Vec::with_capacity(n_exc);
        for _ in 0..n_exc {
            exc_val.push(buf.get_i64_le());
        }
        let out = Self {
            hot,
            codes,
            exc_pos,
            exc_val,
        };
        out.validate()?;
        Ok(out)
    }
}

impl IntAccess for FrequencyInt {
    fn len(&self) -> usize {
        self.codes.len()
    }

    fn get(&self, i: usize) -> i64 {
        match self.exc_pos.binary_search(&(i as u32)) {
            Ok(k) => self.exc_val[k],
            Err(_) => self.hot[self.codes.get(i) as usize],
        }
    }

    fn decode_into(&self, out: &mut Vec<i64>) {
        out.clear();
        out.reserve(self.len());
        self.codes.unpack_chunks(|_, chunk| {
            out.extend(chunk.iter().map(|&c| self.hot[c as usize]));
        });
        for (k, &p) in self.exc_pos.iter().enumerate() {
            out[p as usize] = self.exc_val[k];
        }
    }

    fn compressed_bytes(&self) -> usize {
        self.hot.len() * 8 + 1 + self.codes.tight_bytes() + self.exc_pos.len() * 12
    }
}

impl FilterInt for FrequencyInt {
    /// Evaluates the predicate once per distinct *hot* value, then walks the
    /// codes against the precomputed verdicts; exception rows (whose code
    /// slot is meaningless) are merged in by a sorted walk over the
    /// exception index and tested on their verbatim values.
    fn filter_into(&self, range: &IntRange, out: &mut Vec<u32>) {
        out.clear();
        let hot_match: Vec<bool> = self.hot.iter().map(|&v| range.matches(v)).collect();
        let mut e = 0usize;
        self.codes.unpack_chunks(|start, chunk| {
            for (j, &c) in chunk.iter().enumerate() {
                let i = start + j;
                if e < self.exc_pos.len() && self.exc_pos[e] == i as u32 {
                    if range.matches(self.exc_val[e]) {
                        out.push(i as u32);
                    }
                    e += 1;
                } else if hot_match[c as usize] {
                    out.push(i as u32);
                }
            }
        });
    }

    /// Exact bounds over the hot values and the exception region — every
    /// stored value appears in one of the two.
    fn value_bounds(&self) -> Option<ZoneMap> {
        if self.is_empty() {
            return None;
        }
        // With exceptions present, some hot codes may be padding (code 0 at
        // exception rows), but every hot value was drawn from the data, so
        // the union stays covering and tight.
        let hot = ZoneMap::from_values(&self.hot);
        let exc = ZoneMap::from_values(&self.exc_val);
        match (hot, exc) {
            (Some(a), Some(b)) => Some(a.union(b)),
            (z, None) | (None, z) => z,
        }
    }
}

impl AggInt for FrequencyInt {
    /// Histograms the hot codes, subtracts the meaningless padding codes at
    /// exception rows, folds each hot value once weighted by its count, and
    /// folds exceptions verbatim — O(rows) counter increments plus
    /// O(hot + exceptions) value folds.
    fn aggregate_into(&self, state: &mut IntAggState) {
        if self.is_empty() {
            return;
        }
        let mut counts = vec![0u64; self.hot.len().max(1)];
        self.codes.unpack_chunks(|_, chunk| {
            for &c in chunk {
                counts[c as usize] += 1;
            }
        });
        for (k, &p) in self.exc_pos.iter().enumerate() {
            counts[self.codes.get(p as usize) as usize] -= 1;
            state.update(self.exc_val[k]);
        }
        for (&v, &n) in self.hot.iter().zip(&counts) {
            state.update_n(v, n);
        }
    }

    fn aggregate_selected(&self, sel: &SelectionVector, state: &mut IntAggState) {
        // Positions are sorted, so one check on the last bounds them all.
        if let Some(&last) = sel.positions().last() {
            assert!(
                (last as usize) < self.len(),
                "position {last} out of bounds (len {})",
                self.len()
            );
        } else {
            return;
        }
        let r = self.codes.reader();
        let mut e = 0usize;
        for &p in sel.positions() {
            while e < self.exc_pos.len() && self.exc_pos[e] < p {
                e += 1;
            }
            if e < self.exc_pos.len() && self.exc_pos[e] == p {
                state.update(self.exc_val[e]);
            } else {
                state.update(self.hot[r.get(p as usize) as usize]);
            }
        }
    }

    fn aggregate_grouped(&self, group_of: &[u32], states: &mut [IntAggState]) {
        assert_eq!(group_of.len(), self.len(), "group codes misaligned");
        let mut e = 0usize;
        self.codes.unpack_chunks(|start, chunk| {
            for (j, &c) in chunk.iter().enumerate() {
                let i = start + j;
                let v = if e < self.exc_pos.len() && self.exc_pos[e] == i as u32 {
                    e += 1;
                    self.exc_val[e - 1]
                } else {
                    self.hot[c as usize]
                };
                states[group_of[i] as usize].update(v);
            }
        });
    }

    /// Exact bounds over hot values ∪ exceptions — every hot value of a
    /// canonical encode occurs in some non-exception row.
    fn exact_bounds(&self) -> Option<ZoneMap> {
        self.value_bounds()
    }
}

impl Validate for FrequencyInt {
    fn validate(&self) -> Result<()> {
        if self.exc_pos.len() != self.exc_val.len() {
            return Err(Error::corrupt("frequency exception arrays misaligned"));
        }
        if self.exc_pos.windows(2).any(|w| w[0] >= w[1]) {
            return Err(Error::corrupt("frequency exception positions not sorted"));
        }
        if let Some(&last) = self.exc_pos.last() {
            if last as usize >= self.codes.len() {
                return Err(Error::corrupt("frequency exception position out of range"));
            }
        }
        for i in 0..self.codes.len() {
            if self.codes.get(i) as usize >= self.hot.len().max(1) {
                return Err(Error::corrupt("frequency code out of range"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skewed_distribution() {
        // 95% zeros, a few odd values.
        let mut values = vec![0i64; 950];
        values.extend((0..50).map(|i| 1000 + i));
        let enc = FrequencyInt::encode(&values, 1);
        assert_eq!(enc.exceptions(), 50);
        assert_eq!(enc.bits(), 0);
        let mut out = Vec::new();
        enc.decode_into(&mut out);
        assert_eq!(out, values);
        assert_eq!(enc.get(0), 0);
        assert_eq!(enc.get(951), 1001);
    }

    #[test]
    fn top_k_selection() {
        let values = vec![5i64, 5, 5, 9, 9, 1];
        let enc = FrequencyInt::encode(&values, 2);
        // 5 (3x) and 9 (2x) are hot, 1 is the exception.
        assert_eq!(enc.exceptions(), 1);
        let mut out = Vec::new();
        enc.decode_into(&mut out);
        assert_eq!(out, values);
    }

    #[test]
    fn all_hot_no_exceptions() {
        let values = vec![1i64, 2, 1, 2];
        let enc = FrequencyInt::encode(&values, 4);
        assert_eq!(enc.exceptions(), 0);
        let mut out = Vec::new();
        enc.decode_into(&mut out);
        assert_eq!(out, values);
    }

    #[test]
    fn random_access_hits_exceptions() {
        let values = vec![7i64, 3, 7, 7, 4, 7];
        let enc = FrequencyInt::encode(&values, 1);
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(enc.get(i), v, "row {i}");
        }
    }

    #[test]
    fn serialization_roundtrip() {
        let values = vec![7i64, 3, 7, 7, 4, 7, 9, 7];
        let enc = FrequencyInt::encode(&values, 1);
        let mut buf = Vec::new();
        enc.write_to(&mut buf);
        assert_eq!(buf.len(), enc.serialized_len());
        let back = FrequencyInt::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(back, enc);
        assert!(FrequencyInt::read_from(&mut &buf[..6]).is_err());
    }

    #[test]
    fn empty() {
        let enc = FrequencyInt::encode(&[], 4);
        assert!(enc.is_empty());
        assert_eq!(enc.exceptions(), 0);
        assert!(enc.value_bounds().is_none());
    }

    #[test]
    fn filter_hot_and_exceptions() {
        let values = vec![7i64, 3, 7, 7, 4, 7, 9, 7];
        let enc = FrequencyInt::encode(&values, 1);
        assert_eq!(enc.exceptions(), 3);
        let mut out = Vec::new();
        for range in [
            IntRange::new(7, 7),
            IntRange::negated(7, 7),
            IntRange::new(3, 4),
            IntRange::new(100, 200),
        ] {
            enc.filter_into(&range, &mut out);
            assert_eq!(
                out,
                crate::filter::filter_naive(&values, &range),
                "{range:?}"
            );
        }
        let zone = enc.value_bounds().unwrap();
        assert!(values.iter().all(|&v| zone.covers(v)));
        assert_eq!((zone.min, zone.max), (3, 9));
    }

    #[test]
    fn beats_dict_on_heavy_skew() {
        // One dominant value + long tail of uniques: frequency wins over dict
        // because dict must store every distinct value at full width.
        let mut values = vec![0i64; 100_000];
        for i in 0..500 {
            values[i * 200] = 1_000_000 + i as i64;
        }
        let freq = FrequencyInt::encode(&values, 1);
        let dict = crate::dict::DictInt::encode(&values);
        assert!(freq.compressed_bytes() < dict.compressed_bytes());
    }
}
