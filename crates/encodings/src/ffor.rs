//! Frame-of-Reference (FOR) encoding followed by bit-packing.
//!
//! Values are stored as unsigned offsets from the column minimum, packed at
//! the minimal width that covers the range. This is one half of the paper's
//! baseline ("We use FOR- or Dict-encoding schemes, followed by a
//! bit-packing") and also the physical layout Corra uses for the diff column
//! in non-hierarchical encoding.

use bytes::{Buf, BufMut};
use corra_columnar::bitpack::{bits_needed, BitPackedVec};
use corra_columnar::error::{Error, Result};
use corra_columnar::selection::SelectionVector;

use corra_columnar::predicate::IntRange;
use corra_columnar::stats::ZoneMap;

use corra_columnar::aggregate::IntAggState;

use crate::aggregate::AggInt;
use crate::filter::FilterInt;
use crate::traits::{IntAccess, Validate};

/// FOR + bit-packed integer column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForInt {
    base: i64,
    packed: BitPackedVec,
}

impl ForInt {
    /// Encodes `values` with base = min(values).
    pub fn encode(values: &[i64]) -> Self {
        let base = values.iter().copied().min().unwrap_or(0);
        let offsets: Vec<u64> = values
            .iter()
            .map(|&v| (v as i128 - base as i128) as u64)
            .collect();
        Self {
            base,
            packed: BitPackedVec::pack_minimal(&offsets),
        }
    }

    /// Encodes with an explicit width (≥ minimal), e.g. for ablations.
    pub fn encode_with_bits(values: &[i64], bits: u8) -> Result<Self> {
        let base = values.iter().copied().min().unwrap_or(0);
        let offsets: Vec<u64> = values
            .iter()
            .map(|&v| (v as i128 - base as i128) as u64)
            .collect();
        Ok(Self {
            base,
            packed: BitPackedVec::pack(&offsets, bits)?,
        })
    }

    /// The frame base (column minimum).
    pub fn base(&self) -> i64 {
        self.base
    }

    /// Bit width per value.
    pub fn bits(&self) -> u8 {
        self.packed.bits()
    }

    /// Serialized length of [`write_to`](Self::write_to).
    pub fn serialized_len(&self) -> usize {
        8 + self.packed.serialized_len()
    }

    /// Writes `base (i64) | packed`.
    pub fn write_to(&self, buf: &mut impl BufMut) {
        buf.put_i64_le(self.base);
        self.packed.write_to(buf);
    }

    /// Reads back a [`write_to`](Self::write_to) payload.
    pub fn read_from(buf: &mut impl Buf) -> Result<Self> {
        if buf.remaining() < 8 {
            return Err(Error::corrupt("for-int header truncated"));
        }
        let base = buf.get_i64_le();
        let packed = BitPackedVec::read_from(buf)?;
        Ok(Self { base, packed })
    }

    /// Direct offset access without adding the base (used by diff encodings).
    #[inline]
    pub fn offset_at(&self, i: usize) -> u64 {
        self.packed.get(i)
    }

    /// A hoisted-mask reader over the packed offsets (hot query loops).
    #[inline]
    pub fn offset_reader(&self) -> corra_columnar::bitpack::PackedReader<'_> {
        self.packed.reader()
    }

    /// Value access skipping the per-call bounds assertion; the caller must
    /// have validated `i < len` (hot query path).
    #[inline]
    pub fn value_at_unchecked(&self, i: usize) -> i64 {
        (self.base as i128 + self.packed.get_unchecked_len(i) as i128) as i64
    }
}

impl IntAccess for ForInt {
    fn len(&self) -> usize {
        self.packed.len()
    }

    #[inline]
    fn get(&self, i: usize) -> i64 {
        (self.base as i128 + self.packed.get(i) as i128) as i64
    }

    fn decode_into(&self, out: &mut Vec<i64>) {
        // Fused batched kernel: offsets decode and the frame add happen in
        // one width-specialized pass.
        self.packed.unpack_add_into(self.base, out);
    }

    fn gather_into(&self, sel: &SelectionVector, out: &mut Vec<i64>) {
        // Positions are sorted, so one check on the last bounds them all —
        // out-of-range selections panic like the scalar getter would.
        if let Some(&last) = sel.positions().last() {
            assert!(
                (last as usize) < self.len(),
                "position {last} out of bounds (len {})",
                self.len()
            );
        }
        out.clear();
        out.reserve(sel.len());
        let base = self.base;
        let r = self.packed.reader();
        for &p in sel.positions() {
            out.push(base.wrapping_add(r.get(p as usize) as i64));
        }
    }

    fn compressed_bytes(&self) -> usize {
        // base + width byte + tightly packed payload.
        8 + 1 + self.packed.tight_bytes()
    }
}

impl FilterInt for ForInt {
    /// Rewrites `[lo, hi]` into the packed offset domain (`v - base`) once
    /// and compares raw offsets per row — no per-row reconstruction to
    /// `i64`.
    fn filter_into(&self, range: &IntRange, out: &mut Vec<u32>) {
        out.clear();
        let n = self.len();
        // Offset-domain interval. Offsets live in [0, u64::MAX]; anything
        // outside means the positive interval misses the whole frame.
        let lo_wide = range.lo as i128 - self.base as i128;
        let hi_wide = range.hi as i128 - self.base as i128;
        if range.interval_is_empty() || hi_wide < 0 || lo_wide > u64::MAX as i128 {
            if range.negate {
                out.extend(0..n as u32);
            }
            return;
        }
        let lo_off = lo_wide.max(0) as u64;
        let hi_off = hi_wide.min(u64::MAX as i128) as u64;
        // Fused decode+compare in the packed offset domain: one SIMD sweep
        // over the compressed words, no materialized column.
        self.packed
            .filter_range_into(lo_off, hi_off, range.negate, out);
    }

    /// O(1) covering bounds from the frame: `[base, base + 2^bits - 1]`
    /// (clamped). The min is exact; the max may overshoot the true maximum
    /// by up to one power of two, which is sound for pruning.
    fn value_bounds(&self) -> Option<ZoneMap> {
        if self.is_empty() {
            return None;
        }
        let span = if self.bits() == 64 {
            u64::MAX
        } else {
            (1u64 << self.bits()) - 1
        };
        let max = (self.base as i128 + span as i128).min(i64::MAX as i128) as i64;
        Some(ZoneMap {
            min: self.base,
            max,
        })
    }
}

impl AggInt for ForInt {
    /// Folds in the packed offset domain: offsets accumulate into one
    /// `u128`, the frame base is added back once (`n · base`), and min/max
    /// reduce over raw offsets — no per-row `i64` reconstruction. Falls back
    /// to a per-row wrapping fold only when `base + 2^bits - 1` could leave
    /// the `i64` domain (where reconstruction itself wraps).
    fn aggregate_into(&self, state: &mut IntAggState) {
        let n = self.len();
        if n == 0 {
            return;
        }
        let base = self.base;
        let no_wrap = self.bits() < 64
            && base
                .checked_add(((1u64 << self.bits()) - 1) as i64)
                .is_some();
        if no_wrap {
            let mut sum_off = 0u128;
            let mut min_off = u64::MAX;
            let mut max_off = 0u64;
            self.packed.unpack_chunks(|_, chunk| {
                for &off in chunk {
                    sum_off += off as u128;
                    min_off = min_off.min(off);
                    max_off = max_off.max(off);
                }
            });
            state.merge(&IntAggState {
                count: n as u64,
                sum: n as i128 * base as i128 + sum_off as i128,
                min: Some(base + min_off as i64),
                max: Some(base + max_off as i64),
            });
        } else {
            self.packed.unpack_chunks(|_, chunk| {
                for &off in chunk {
                    state.update(base.wrapping_add(off as i64));
                }
            });
        }
    }

    fn aggregate_selected(&self, sel: &SelectionVector, state: &mut IntAggState) {
        // Positions are sorted, so one check on the last bounds them all.
        if let Some(&last) = sel.positions().last() {
            assert!(
                (last as usize) < self.len(),
                "position {last} out of bounds (len {})",
                self.len()
            );
        }
        let base = self.base;
        let r = self.packed.reader();
        for &p in sel.positions() {
            state.update(base.wrapping_add(r.get(p as usize) as i64));
        }
    }

    fn aggregate_grouped(&self, group_of: &[u32], states: &mut [IntAggState]) {
        assert_eq!(group_of.len(), self.len(), "group codes misaligned");
        let base = self.base;
        self.packed.unpack_chunks(|start, chunk| {
            for (j, &off) in chunk.iter().enumerate() {
                states[group_of[start + j] as usize].update(base.wrapping_add(off as i64));
            }
        });
    }
}

impl Validate for ForInt {
    fn validate(&self) -> Result<()> {
        // The minimal-width invariant: some offset uses the top bit range,
        // unless the column is empty or constant.
        if self.packed.bits() > 0 {
            let max = (0..self.len())
                .map(|i| self.packed.get(i))
                .max()
                .unwrap_or(0);
            if bits_needed(max) < self.packed.bits() {
                // Wider-than-minimal is legal (encode_with_bits); only flag
                // impossible states.
            }
            if self.len() == 0 {
                return Err(Error::corrupt("nonzero width with zero length"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_basic() {
        let values = vec![100i64, 107, 100, 115, 103];
        let enc = ForInt::encode(&values);
        assert_eq!(enc.base(), 100);
        assert_eq!(enc.bits(), 4); // range 15
        let mut out = Vec::new();
        enc.decode_into(&mut out);
        assert_eq!(out, values);
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(enc.get(i), v);
        }
    }

    #[test]
    fn constant_column_is_free() {
        let enc = ForInt::encode(&[42; 1000]);
        assert_eq!(enc.bits(), 0);
        assert_eq!(enc.compressed_bytes(), 9); // base + width byte only
        assert_eq!(enc.get(999), 42);
    }

    #[test]
    fn negative_values() {
        let values = vec![-5i64, -1, -9, 0];
        let enc = ForInt::encode(&values);
        assert_eq!(enc.base(), -9);
        let mut out = Vec::new();
        enc.decode_into(&mut out);
        assert_eq!(out, values);
    }

    #[test]
    fn extreme_range_needs_64_bits() {
        let values = vec![i64::MIN, i64::MAX];
        let enc = ForInt::encode(&values);
        assert_eq!(enc.bits(), 64);
        assert_eq!(enc.get(0), i64::MIN);
        assert_eq!(enc.get(1), i64::MAX);
    }

    #[test]
    fn paper_date_column_size() {
        // shipdate domain: 2557 days -> 12 bits; 1M rows -> 1.5 MB + 9B meta.
        let lo = corra_columnar::temporal::parse_date("1992-01-01").unwrap();
        let hi = corra_columnar::temporal::parse_date("1998-12-31").unwrap();
        let values: Vec<i64> = (0..1_000_000)
            .map(|i| lo + (i as i64 % (hi - lo + 1)))
            .collect();
        let enc = ForInt::encode(&values);
        assert_eq!(enc.bits(), 12);
        assert_eq!(enc.compressed_bytes(), 1_500_000 + 9);
    }

    #[test]
    fn explicit_width() {
        let enc = ForInt::encode_with_bits(&[0, 1, 2], 8).unwrap();
        assert_eq!(enc.bits(), 8);
        assert_eq!(enc.get(2), 2);
        assert!(ForInt::encode_with_bits(&[0, 300], 8).is_err());
    }

    #[test]
    fn serialization_roundtrip() {
        let values: Vec<i64> = (0..500).map(|i| i * 3 - 700).collect();
        let enc = ForInt::encode(&values);
        let mut buf = Vec::new();
        enc.write_to(&mut buf);
        assert_eq!(buf.len(), enc.serialized_len());
        let back = ForInt::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(back, enc);
        assert!(ForInt::read_from(&mut &buf[..4]).is_err());
    }

    #[test]
    fn gather() {
        let enc = ForInt::encode(&(0..1000i64).map(|i| i + 5000).collect::<Vec<_>>());
        let sel = SelectionVector::new(vec![0, 500, 999]);
        let mut out = Vec::new();
        enc.gather_into(&sel, &mut out);
        assert_eq!(out, vec![5000, 5500, 5999]);
    }

    #[test]
    fn filter_in_packed_domain() {
        let values: Vec<i64> = (0..100).map(|i| 1_000 + i % 16).collect();
        let enc = ForInt::encode(&values);
        let mut out = Vec::new();
        enc.filter_into(&IntRange::new(1_003, 1_005), &mut out);
        assert_eq!(
            out,
            crate::filter::filter_naive(&values, &IntRange::new(1_003, 1_005))
        );
        // Range entirely below / above the frame.
        enc.filter_into(&IntRange::new(0, 999), &mut out);
        assert!(out.is_empty());
        enc.filter_into(&IntRange::negated(0, 999), &mut out);
        assert_eq!(out.len(), 100);
        // Bounds cover the data.
        let zone = enc.value_bounds().unwrap();
        assert!(values.iter().all(|&v| zone.covers(v)));
        assert_eq!(zone.min, 1_000);
    }

    #[test]
    fn filter_extreme_base() {
        let values = vec![i64::MIN, -1, i64::MAX];
        let enc = ForInt::encode(&values);
        let mut out = Vec::new();
        for range in [
            IntRange::new(i64::MIN, -1),
            IntRange::new(0, i64::MAX),
            IntRange::negated(i64::MIN, i64::MIN),
        ] {
            enc.filter_into(&range, &mut out);
            assert_eq!(
                out,
                crate::filter::filter_naive(&values, &range),
                "{range:?}"
            );
        }
        assert!(enc.value_bounds().unwrap().covers(i64::MAX));
        assert!(ForInt::encode(&[]).value_bounds().is_none());
    }

    #[test]
    fn empty_column() {
        let enc = ForInt::encode(&[]);
        assert!(enc.is_empty());
        assert_eq!(enc.compressed_bytes(), 9);
        let mut out = vec![1];
        enc.decode_into(&mut out);
        assert!(out.is_empty());
    }
}
