//! Compressed-domain filter kernels: the pushdown side of scanning.
//!
//! Where [`crate::traits::IntAccess`] materializes values at given
//! positions, [`FilterInt`] goes the other way: given a normalized range
//! predicate it *produces* the matching positions, working on each codec's
//! compressed representation instead of decompressing to `i64` per row:
//!
//! * **FOR** rewrites the range into the packed offset domain and compares
//!   raw packed words — no base addition per row;
//! * **Dict** turns the range into a contiguous code interval via binary
//!   search on the sorted dictionary, then compares codes;
//! * **Frequency** evaluates the predicate once per hot value and once per
//!   exception, then walks codes against the precomputed verdicts;
//! * **RLE** evaluates once per run and emits (or skips) whole runs;
//! * **Delta** falls back to a streaming reconstruction: one sequential
//!   pass with miniblock restarts, never paying random-access cost;
//! * **Plain** is the trivial comparator.
//!
//! Every kernel emits positions in strictly increasing row order, matching
//! [`SelectionVector::from_sorted`](corra_columnar::selection::SelectionVector::from_sorted).

use corra_columnar::predicate::IntRange;
use corra_columnar::simd;
use corra_columnar::stats::ZoneMap;

/// Predicate evaluation over a compressed integer column.
pub trait FilterInt {
    /// Appends the positions (ascending) of all rows matching `range` into
    /// `out` (cleared first).
    fn filter_into(&self, range: &IntRange, out: &mut Vec<u32>);

    /// A covering (not necessarily tight) min/max zone map of the encoded
    /// values, or `None` when the column is empty or bounds are not cheaply
    /// derivable. Used for block pruning before the per-row kernel runs.
    fn value_bounds(&self) -> Option<ZoneMap>;
}

/// Equality predicate evaluation over a compressed string column.
pub trait FilterStr {
    /// Appends the positions (ascending) of all rows whose string equals
    /// `value` (or differs, when `negate`) into `out` (cleared first).
    fn filter_eq_into(&self, value: &str, negate: bool, out: &mut Vec<u32>);
}

/// Fused range compare over a materialized `i64` span: appends
/// `first_row + j` for every value matching `range`, running the active
/// SIMD tier's compare kernel. The shared back end of the Plain filter and
/// Delta's streaming-reconstruction filter. `out` is *not* cleared, so
/// chunked callers can stack spans.
pub fn filter_i64_slice(values: &[i64], range: &IntRange, first_row: u32, out: &mut Vec<u32>) {
    if range.interval_is_empty() {
        if range.negate {
            out.extend(first_row..first_row + values.len() as u32);
        }
        return;
    }
    simd::filter_i64_into(
        simd::active(),
        values,
        range.lo,
        range.hi,
        range.negate,
        first_row,
        out,
    );
}

/// Reference comparator used by the parity tests: decompress-then-filter.
pub fn filter_naive(values: &[i64], range: &IntRange) -> Vec<u32> {
    values
        .iter()
        .enumerate()
        .filter(|&(_, &v)| range.matches(v))
        .map(|(i, _)| i as u32)
        .collect()
}
