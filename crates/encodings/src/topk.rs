//! Compressed-domain TOP-K kernels, one per encoding family.
//!
//! Every implementation feeds `(value, base + row)` candidates into a
//! [`TopKHeap`]; an implementation may skip rows that provably cannot make
//! the top-k *given the other candidates it offers from the same column*
//! (the heap itself arbitrates against candidates from other blocks).
//! Fast paths:
//!
//! * **Dict** — the sorted dictionary means code order is value order
//!   ([`CodeOrder`]), so one histogram pass picks the winning codes and a
//!   second pass collects their first occurrences: `O(rows + distinct)`
//!   with at most `k` heap offers, no per-row comparisons.
//! * **RLE** — a run is `run_len` equal values at consecutive positions;
//!   only its first `min(run_len, k)` rows can win, and a whole run is
//!   skipped with one bound check.
//! * **FOR / Plain / Delta / Frequency** — offsets preserve value order,
//!   so the batched (SIMD-tiered) decode followed by the bounded heap is
//!   already the fast path; the heap rejects losers with one compare.

use corra_columnar::selection::SelectionVector;
use corra_columnar::topk::TopKHeap;

use crate::chooser::IntEncoding;
use crate::delta::DeltaInt;
use crate::dict::DictInt;
use crate::ffor::ForInt;
use crate::frequency::FrequencyInt;
use crate::plain::PlainInt;
use crate::rle::RleInt;
use crate::traits::{CodeOrder, IntAccess};

/// Streams the whole column through a batched decode and offers every row.
fn stream_top_k<E: IntAccess + ?Sized>(enc: &E, base: u64, heap: &mut TopKHeap) {
    if heap.k() == 0 {
        return;
    }
    let mut buf = Vec::new();
    enc.decode_into(&mut buf);
    for (i, &v) in buf.iter().enumerate() {
        heap.offer(v, base + i as u64);
    }
}

/// Per-encoding TOP-K: offer this column's candidate rows into `heap`.
///
/// `base` is the caller's position offset (drivers pass `block << 32` so
/// positions stay globally unique and the heap's tie-break resolves to
/// "earlier block, then earlier row").
pub trait TopKInt: IntAccess {
    /// Offers every row of the column (implementations may skip rows that
    /// provably lose to rows they do offer).
    fn top_k_into(&self, base: u64, heap: &mut TopKHeap) {
        stream_top_k(self, base, heap);
    }

    /// Offers only the selected rows (the post-filter path).
    fn top_k_selected(&self, base: u64, sel: &SelectionVector, heap: &mut TopKHeap) {
        if heap.k() == 0 {
            return;
        }
        for &p in sel.positions() {
            heap.offer(self.get(p as usize), base + p as u64);
        }
    }
}

impl TopKInt for PlainInt {}
impl TopKInt for ForInt {}
impl TopKInt for DeltaInt {}
impl TopKInt for FrequencyInt {}

impl TopKInt for RleInt {
    /// One bound check per *run*; an accepted run offers only its first
    /// `min(run_len, k)` positions (equal values at ascending positions —
    /// later ones can never beat them on the tie-break).
    fn top_k_into(&self, base: u64, heap: &mut TopKHeap) {
        let k = heap.k();
        if k == 0 {
            return;
        }
        let mut start = 0u32;
        for (&v, &end) in self.run_values().iter().zip(self.run_ends()) {
            if heap.would_accept(v) {
                let take = ((end - start) as usize).min(k) as u32;
                for p in start..start + take {
                    heap.offer(v, base + p as u64);
                }
            }
            start = end;
        }
    }
}

impl TopKInt for DictInt {
    /// Code-domain selection, valid only because the dictionary is sorted
    /// (gated on [`CodeOrder::codes_are_ordered`], falling back to the
    /// streaming path otherwise): histogram the packed codes, walk codes
    /// best-value-first until `k` rows are covered, then collect the
    /// first occurrences of the winning codes in one row-order pass.
    fn top_k_into(&self, base: u64, heap: &mut TopKHeap) {
        let k = heap.k();
        if k == 0 || self.is_empty() {
            return;
        }
        if !self.codes_are_ordered() {
            stream_top_k(self, base, heap);
            return;
        }
        let dict = self.dict();
        let mut codes = Vec::new();
        self.codes_into(&mut codes);
        let mut counts = vec![0u32; dict.len()];
        for &c in &codes {
            counts[c as usize] += 1;
        }
        // Walk codes from the best value onward; `take[c]` is how many of
        // code `c`'s rows can still make the top-k.
        let mut take = vec![0u32; dict.len()];
        let order: &mut dyn Iterator<Item = usize> = if heap.descending() {
            &mut (0..dict.len()).rev()
        } else {
            &mut (0..dict.len())
        };
        let mut remaining = k;
        for c in order {
            if remaining == 0 || !heap.would_accept(dict[c]) {
                break;
            }
            let t = (counts[c] as usize).min(remaining);
            take[c] = t as u32;
            remaining -= t;
        }
        // Offer the first `take[c]` occurrences of each winning code, in
        // row order — exactly the positions the tie-break would keep.
        for (i, &c) in codes.iter().enumerate() {
            let c = c as usize;
            if take[c] > 0 {
                take[c] -= 1;
                heap.offer(dict[c], base + i as u64);
            }
        }
    }
}

impl TopKInt for IntEncoding {
    fn top_k_into(&self, base: u64, heap: &mut TopKHeap) {
        match self {
            IntEncoding::Plain(e) => e.top_k_into(base, heap),
            IntEncoding::For(e) => e.top_k_into(base, heap),
            IntEncoding::Dict(e) => e.top_k_into(base, heap),
            IntEncoding::Rle(e) => e.top_k_into(base, heap),
            IntEncoding::Delta(e) => e.top_k_into(base, heap),
            IntEncoding::Frequency(e) => e.top_k_into(base, heap),
        }
    }

    fn top_k_selected(&self, base: u64, sel: &SelectionVector, heap: &mut TopKHeap) {
        match self {
            IntEncoding::Plain(e) => e.top_k_selected(base, sel, heap),
            IntEncoding::For(e) => e.top_k_selected(base, sel, heap),
            IntEncoding::Dict(e) => e.top_k_selected(base, sel, heap),
            IntEncoding::Rle(e) => e.top_k_selected(base, sel, heap),
            IntEncoding::Delta(e) => e.top_k_selected(base, sel, heap),
            IntEncoding::Frequency(e) => e.top_k_selected(base, sel, heap),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use corra_columnar::topk::rank;

    fn oracle(values: &[i64], k: usize, descending: bool) -> Vec<(i64, u64)> {
        let mut rows: Vec<(i64, u64)> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i as u64))
            .collect();
        rows.sort_by_key(|&(v, p)| (rank(v, descending), p));
        rows.truncate(k);
        rows
    }

    fn check<E: TopKInt>(enc: &E, values: &[i64]) {
        for k in [0usize, 1, 3, values.len(), values.len() + 7] {
            for descending in [false, true] {
                let mut heap = TopKHeap::new(k, descending);
                enc.top_k_into(0, &mut heap);
                assert_eq!(
                    heap.into_sorted(),
                    oracle(values, k, descending),
                    "k={k} descending={descending}"
                );
            }
        }
        // Selected path: every third row.
        let sel: Vec<u32> = (0..values.len() as u32).step_by(3).collect();
        let filtered: Vec<(i64, u64)> = sel
            .iter()
            .map(|&p| (values[p as usize], p as u64))
            .collect();
        let mut want: Vec<(i64, u64)> = filtered;
        want.sort_by_key(|&(v, p)| (rank(v, true), p));
        want.truncate(2);
        let mut heap = TopKHeap::new(2, true);
        enc.top_k_selected(0, &SelectionVector::new(sel), &mut heap);
        assert_eq!(heap.into_sorted(), want);
    }

    #[test]
    fn every_codec_matches_the_oracle() {
        let values: Vec<i64> = (0..500)
            .map(|i| [7, 7, 7, 3, 3, 900, -14, 7, 0, 55][i % 10] + (i as i64 / 100))
            .collect();
        check(&PlainInt::encode(&values), &values);
        check(&ForInt::encode(&values), &values);
        check(&DictInt::encode(&values), &values);
        check(&RleInt::encode(&values), &values);
        check(&DeltaInt::encode(&values), &values);
        check(&FrequencyInt::encode(&values, 4), &values);
    }

    #[test]
    fn rle_duplicate_heavy_folds_runs() {
        // One long run dominates: only its first k positions may surface.
        let mut values = vec![5i64; 10_000];
        values.extend([1, 1, 9]);
        let enc = RleInt::encode(&values);
        let mut heap = TopKHeap::new(3, false);
        enc.top_k_into(0, &mut heap);
        assert_eq!(heap.into_sorted(), vec![(1, 10_000), (1, 10_001), (5, 0)]);
        check(&enc, &values);
    }

    #[test]
    fn dict_code_domain_respects_existing_bound() {
        // A heap already holding better values from "another block" must
        // reject everything this column offers.
        let values = vec![100i64, 200, 300];
        let enc = DictInt::encode(&values);
        let mut heap = TopKHeap::new(2, false);
        heap.offer(1, 500);
        heap.offer(2, 501);
        enc.top_k_into(0, &mut heap);
        assert_eq!(heap.into_sorted(), vec![(1, 500), (2, 501)]);
    }

    #[test]
    fn dispatch_through_int_encoding() {
        let values = vec![9i64, -2, 9, 4, 4, 4, 11];
        let enc = IntEncoding::Rle(RleInt::encode(&values));
        let mut heap = TopKHeap::new(2, true);
        enc.top_k_into(1 << 32, &mut heap);
        assert_eq!(heap.into_sorted(), vec![(11, (1 << 32) + 6), (9, 1 << 32)]);
    }
}
