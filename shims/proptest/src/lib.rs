//! Offline shim for the `proptest` crate (see `shims/README.md`).
//!
//! Source-compatible with the subset of proptest this workspace uses:
//! the [`proptest!`] macro, `prop_assert*`, [`prop_oneof!`],
//! [`any`](arbitrary::any),
//! ranges / tuples / `prop::collection::vec` / `prop::sample` strategies,
//! and a regex-lite string strategy (`"[a-z]{0,8}"`-style patterns).
//!
//! Differences from real proptest: cases are generated from a fixed
//! per-test seed (deterministic across runs; override the count with
//! `PROPTEST_CASES`), and failing cases are **not shrunk** — the panic
//! message reports the case number and the failed assertion instead.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod strategy {
    //! The [`Strategy`] trait and the combinators the workspace uses.

    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of values this strategy produces.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Strategy producing a value of type `T` via [`crate::arbitrary::Arbitrary`].
    pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

    impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary_sample(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    // Mild edge bias: endpoints show up more often than
                    // uniform sampling alone would produce.
                    match rng.gen_range(0u8..16) {
                        0 => self.start,
                        1 => self.end - 1,
                        _ => rng.gen_range(self.clone()),
                    }
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    match rng.gen_range(0u8..16) {
                        0 => *self.start(),
                        1 => *self.end(),
                        _ => rng.gen_range(self.clone()),
                    }
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($n:tt $t:ident),+))*) => {$(
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
    }

    /// Uniform choice between boxed alternative strategies — the engine
    /// behind [`crate::prop_oneof!`].
    pub struct Union<V> {
        arms: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        /// Builds a union over `arms`; panics if empty.
        pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Self { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn sample(&self, rng: &mut TestRng) -> V {
            let arm = rng.gen_range(0..self.arms.len());
            self.arms[arm].sample(rng)
        }
    }

    /// Boxes a strategy behind `dyn Strategy` — used by [`crate::prop_oneof!`]
    /// so each arm's value type unifies without coercion-under-inference.
    pub fn boxed<S: Strategy + 'static>(strategy: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(strategy)
    }

    impl Strategy for &str {
        type Value = String;

        /// Treats the `&str` as a regex-lite pattern (see [`crate::string`]).
        fn sample(&self, rng: &mut TestRng) -> String {
            crate::string::sample_pattern(self, rng)
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` and the [`Arbitrary`] sources behind it.

    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value, biased toward edge cases.
        fn arbitrary_sample(rng: &mut TestRng) -> Self;
    }

    /// Returns the canonical strategy for `T` (biased uniform).
    pub fn any<T: Arbitrary>() -> crate::strategy::Any<T> {
        crate::strategy::Any(std::marker::PhantomData)
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ident),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_sample(rng: &mut TestRng) -> $t {
                    // 1 in 8 draws lands on an interesting edge value.
                    if rng.gen_range(0u8..8) == 0 {
                        [0, 1, $t::MAX, $t::MIN, $t::MAX - 1][rng.gen_range(0usize..5)]
                    } else {
                        rng.gen_range($t::MIN..=$t::MAX)
                    }
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_sample(rng: &mut TestRng) -> bool {
            rng.gen_range(0u8..2) == 1
        }
    }

    impl Arbitrary for crate::sample::Index {
        fn arbitrary_sample(rng: &mut TestRng) -> Self {
            crate::sample::Index { raw: rng.gen() }
        }
    }
}

pub mod collection {
    //! `prop::collection::vec`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Accepted size arguments for [`vec`](fn@vec): an exact length or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec`s whose elements come from `element` and whose
    /// length comes from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`](fn@vec).
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod sample {
    //! `prop::sample`: choosing from explicit value lists and indices.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy drawing uniformly from an explicit list of values.
    pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
        assert!(!values.is_empty(), "select needs at least one value");
        Select { values }
    }

    /// See [`select`].
    pub struct Select<T> {
        values: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            self.values[rng.gen_range(0..self.values.len())].clone()
        }
    }

    /// An index into a collection whose size is only known inside the test
    /// body; scale it with [`Index::index`].
    #[derive(Debug, Clone, Copy)]
    pub struct Index {
        pub(crate) raw: u64,
    }

    impl Index {
        /// Maps this abstract index into `0..size`. Panics if `size == 0`.
        pub fn index(&self, size: usize) -> usize {
            assert!(size > 0, "Index::index on empty collection");
            (self.raw % size as u64) as usize
        }
    }
}

pub mod string {
    //! Regex-lite string generation: enough of the regex strategy syntax to
    //! cover patterns like `".{0,20}"` and `"[a-zA-Z ]{0,12}"`.

    use crate::test_runner::TestRng;
    use rand::Rng;

    enum Class {
        /// `.` — any char (a printable-heavy mix including multibyte).
        Dot,
        /// `[...]` — explicit chars and ranges.
        Set(Vec<(char, char)>),
        /// A literal character.
        Literal(char),
    }

    struct Unit {
        class: Class,
        min: usize,
        max: usize, // inclusive
    }

    /// Samples a string matching `pattern`. Panics on syntax the shim does
    /// not implement (extend `parse` rather than silently mis-generating).
    pub fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let units = parse(pattern);
        let mut out = String::new();
        for unit in &units {
            let n = rng.gen_range(unit.min..=unit.max);
            for _ in 0..n {
                out.push(sample_class(&unit.class, rng));
            }
        }
        out
    }

    fn sample_class(class: &Class, rng: &mut TestRng) -> char {
        match class {
            Class::Literal(c) => *c,
            Class::Dot => {
                // Mostly ASCII, with deliberate multibyte coverage.
                match rng.gen_range(0u8..8) {
                    0 => *['é', 'ß', '中', '日', '🦀', '𝕏', '\u{7f}', 'Ω']
                        .get(rng.gen_range(0usize..8))
                        .unwrap(),
                    _ => char::from_u32(rng.gen_range(0x20u32..0x7f)).unwrap(),
                }
            }
            Class::Set(ranges) => {
                let (lo, hi) = ranges[rng.gen_range(0..ranges.len())];
                char::from_u32(rng.gen_range(lo as u32..=hi as u32))
                    .expect("char range must not span surrogates")
            }
        }
    }

    fn parse(pattern: &str) -> Vec<Unit> {
        let mut chars = pattern.chars().peekable();
        let mut units = Vec::new();
        while let Some(c) = chars.next() {
            let class = match c {
                '.' => Class::Dot,
                '[' => {
                    let mut ranges = Vec::new();
                    loop {
                        let c = chars
                            .next()
                            .unwrap_or_else(|| panic!("unterminated [ in pattern {pattern:?}"));
                        if c == ']' {
                            break;
                        }
                        if chars.peek() == Some(&'-') {
                            chars.next();
                            let hi = chars
                                .next()
                                .unwrap_or_else(|| panic!("dangling - in pattern {pattern:?}"));
                            assert!(hi != ']', "dangling - in pattern {pattern:?}");
                            ranges.push((c, hi));
                        } else {
                            ranges.push((c, c));
                        }
                    }
                    assert!(!ranges.is_empty(), "empty [] in pattern {pattern:?}");
                    Class::Set(ranges)
                }
                '\\' => Class::Literal(
                    chars
                        .next()
                        .unwrap_or_else(|| panic!("dangling \\ in {pattern:?}")),
                ),
                '{' | '}' | '*' | '+' | '?' | '(' | ')' | '|' | '^' | '$' => {
                    panic!("unsupported regex syntax {c:?} in pattern {pattern:?} (shim)")
                }
                c => Class::Literal(c),
            };
            // Optional {m,n} / {n} repetition.
            let (min, max) = if chars.peek() == Some(&'{') {
                chars.next();
                let spec: String = chars.by_ref().take_while(|&c| c != '}').collect();
                match spec.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().expect("bad {m,n}"),
                        n.trim().parse().expect("bad {m,n}"),
                    ),
                    None => {
                        let n = spec.trim().parse().expect("bad {n}");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            assert!(min <= max, "inverted repetition in pattern {pattern:?}");
            units.push(Unit { class, min, max });
        }
        units
    }
}

pub mod test_runner {
    //! The case loop and failure plumbing.

    /// The RNG handed to strategies (the `rand` shim's `StdRng`).
    pub type TestRng = rand::rngs::StdRng;

    /// A failed (or rejected) test case.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Marks the case as failed with `reason`.
        pub fn fail(reason: impl Into<String>) -> Self {
            Self(reason.into())
        }

        /// Marks the case as rejected (the shim treats this as failure
        /// since it has no generation filters).
        pub fn reject(reason: impl Into<String>) -> Self {
            Self(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// `Result` alias matching real proptest.
    pub type TestCaseResult = Result<(), TestCaseError>;

    fn num_cases() -> u64 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(256)
    }

    /// Runs `body` over `PROPTEST_CASES` deterministic cases (default 256).
    pub fn run<F>(test_name: &str, mut body: F)
    where
        F: FnMut(&mut TestRng) -> TestCaseResult,
    {
        use rand::SeedableRng;
        // Stable per-test seed: FNV-1a over the test name.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            seed = (seed ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        let cases = num_cases();
        for case in 0..cases {
            let mut rng = TestRng::seed_from_u64(seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            if let Err(e) = body(&mut rng) {
                panic!(
                    "proptest {test_name} failed at case {case}/{cases} \
                     (seed {seed:#x}, no shrinking in shim): {e}"
                );
            }
        }
    }
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude::*`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{TestCaseError, TestCaseResult};
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Namespace re-export so `prop::collection::vec` etc. work after
/// `use proptest::prelude::*`.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// Defines property tests: each function body runs once per generated case.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run(stringify!($name), |__proptest_rng| {
                    $(let $pat = $crate::strategy::Strategy::sample(&($strat), __proptest_rng);)+
                    $body
                    ::std::result::Result::Ok(())
                });
            }
        )*
    };
}

/// Like `assert!`, but fails the current proptest case instead of
/// panicking directly (so the runner can report the case number).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` for proptest cases.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
}

/// `assert_ne!` for proptest cases.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
}

/// Uniform choice between alternative strategies of the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;
    use rand::SeedableRng;

    #[test]
    fn ranges_tuples_vecs_sample_in_bounds() {
        let mut rng = TestRng::seed_from_u64(0);
        for _ in 0..1_000 {
            let v = Strategy::sample(&(1usize..50), &mut rng);
            assert!((1..50).contains(&v));
            let (a, b) = Strategy::sample(&(any::<i32>(), 0i64..10), &mut rng);
            let _ = a;
            assert!((0..10).contains(&b));
            let xs = Strategy::sample(&prop::collection::vec(0u64..(1 << 40), 1..20), &mut rng);
            assert!((1..20).contains(&xs.len()));
            assert!(xs.iter().all(|&x| x < (1 << 40)));
            let fixed = Strategy::sample(&prop::collection::vec(1usize..1_000, 36), &mut rng);
            assert_eq!(fixed.len(), 36);
        }
    }

    #[test]
    fn string_patterns_match_shape() {
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..500 {
            let s = Strategy::sample(&"[a-z]{0,8}", &mut rng);
            assert!(s.chars().count() <= 8);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = Strategy::sample(&"[a-zA-Z ]{0,12}", &mut rng);
            assert!(t.chars().all(|c| c.is_ascii_alphabetic() || c == ' '));
            let u = Strategy::sample(&".{0,20}", &mut rng);
            assert!(u.chars().count() <= 20);
        }
    }

    #[test]
    fn oneof_and_select_cover_all_arms() {
        let mut rng = TestRng::seed_from_u64(2);
        let strat = prop_oneof![
            prop::collection::vec(0i64..1, 1..2),
            prop::collection::vec(prop::sample::select(vec![7i64]), 1..2),
        ];
        let mut saw = [false, false];
        for _ in 0..100 {
            match Strategy::sample(&strat, &mut rng)[0] {
                0 => saw[0] = true,
                7 => saw[1] = true,
                other => panic!("unexpected {other}"),
            }
        }
        assert_eq!(saw, [true, true]);
    }

    #[test]
    fn index_scales_into_any_size() {
        let mut rng = TestRng::seed_from_u64(3);
        for _ in 0..100 {
            let ix: crate::sample::Index =
                Strategy::sample(&any::<crate::sample::Index>(), &mut rng);
            assert!(ix.index(17) < 17);
            assert_eq!(ix.index(1), 0);
        }
    }

    proptest! {
        /// The macro itself: patterns, multiple args, `?`, prop_assert.
        #[test]
        fn macro_smoke(xs in prop::collection::vec(any::<u8>(), 0..10), flag in any::<bool>()) {
            prop_assert!(xs.len() < 10);
            let mut rev = xs.clone();
            rev.reverse();
            rev.reverse();
            prop_assert_eq!(&rev, &xs);
            let _ = flag;
        }
    }

    #[test]
    #[should_panic(expected = "proptest failing_case failed at case")]
    fn failures_report_case_number() {
        crate::test_runner::run("failing_case", |_| Err(TestCaseError::fail("boom")));
    }
}
