//! Offline shim for the `rustc-hash` crate (see `shims/README.md`).
//!
//! Provides [`FxHashMap`] / [`FxHashSet`]: `std` collections parameterized
//! by the Fx hasher — a fast, non-cryptographic multiply-fold hash suitable
//! for in-process hash tables keyed by integers and short strings.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// `BuildHasherDefault` alias matching the real crate's API.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 26;

/// The Fx hasher: fold every word into the state with a multiply + rotate.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word) | (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<i64, i64> = FxHashMap::default();
        for i in 0..1_000 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 1_000);
        assert_eq!(m[&500], 1_000);
        let s: FxHashSet<&str> = ["a", "b", "a"].into_iter().collect();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn hash_is_deterministic_and_spreads() {
        let h = |bytes: &[u8]| {
            let mut hasher = FxHasher::default();
            hasher.write(bytes);
            hasher.finish()
        };
        assert_eq!(h(b"corra"), h(b"corra"));
        assert_ne!(h(b"corra"), h(b"corrb"));
        assert_ne!(h(b""), h(b"\0"));
    }
}
