//! Offline shim for the `rand` crate (see `shims/README.md`).
//!
//! Implements the subset the Corra generators and tests use: a seedable
//! [`rngs::StdRng`] (xoshiro256++ initialized by SplitMix64 — statistically
//! solid and deterministic per seed, though not the real crate's ChaCha12,
//! so streams differ from upstream `rand`), the [`Rng`] extension trait
//! with `gen`, `gen_range` and `gen_bool`, and [`SeedableRng`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::ops::{Range, RangeInclusive};

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction of an RNG from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Builds the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the RNG from a `u64`, expanding it into a full seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Convenience methods available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (uniform over all values for integers, `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable via [`Rng::gen`].
pub trait Standard {
    /// Draws one value from the standard distribution.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for i64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable via [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Rejection-free-enough uniform integer in `[0, span)`; `span == 0` means
/// the full 2^64 range. Uses Lemire's multiply-shift reduction, whose bias
/// (< 2^-64 per draw at the spans used here) is far below anything the
/// statistical assertions in this workspace can observe.
#[inline]
fn uniform_below<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128 + 1) as u64; // 0 encodes full range
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + f32::sample_standard(rng) * (self.end - self.start)
    }
}

/// Named RNG types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard seedable RNG: xoshiro256++ (Blackman & Vigna).
    ///
    /// Not the upstream implementation (ChaCha12), so per-seed streams
    /// differ from real `rand`; everything in this workspace only relies
    /// on determinism and statistical quality, both of which hold.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// SplitMix64 step, used to expand seeds (the xoshiro authors'
    /// recommended initialization).
    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            if s == [0; 4] {
                // All-zero state is a fixed point of xoshiro; remap it.
                return Self::seed_from_u64(0);
            }
            Self { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            Self {
                s: std::array::from_fn(|_| splitmix64(&mut sm)),
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: i64 = rng.gen_range(-50..50);
            assert!((-50..50).contains(&v));
            let w: u64 = rng.gen_range(10..=20);
            assert!((10..=20).contains(&w));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0..1_000) as f64).sum::<f64>() / n as f64;
        assert!((mean - 499.5).abs() < 5.0, "mean {mean}");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.06)).count();
        assert!((5_300..6_700).contains(&hits), "hits {hits}");
    }
}
