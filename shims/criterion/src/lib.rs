//! Offline shim for the `criterion` crate (see `shims/README.md`).
//!
//! Keeps the bench-definition API (`criterion_group!`, `criterion_main!`,
//! benchmark groups, `Bencher::iter`) source-compatible, but replaces the
//! statistical machinery with a plain median-of-samples timer printed to
//! stdout. Good enough to smoke-run kernels and compare orders of
//! magnitude; not a substitute for real criterion confidence intervals.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::time::{Duration, Instant};

/// Measurement configuration and sink, mirroring `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(&id.id, self.sample_size, None, &mut f);
        self
    }
}

/// Throughput annotation: lets reports show elements or bytes per second.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: either a plain name or `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id of the form `function/parameter`.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Creates an id from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.criterion.sample_size = n;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        run_benchmark(&full, self.criterion.sample_size, self.throughput, &mut f);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        run_benchmark(
            &full,
            self.criterion.sample_size,
            self.throughput,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group (reporting is incremental, so this is a no-op).
    pub fn finish(self) {}
}

/// Passed to every benchmark closure; call [`Bencher::iter`] with the
/// routine to measure.
pub struct Bencher {
    sample: Option<Duration>,
}

impl Bencher {
    /// Times one execution of `routine` (the shim's "sample"); criterion
    /// proper would run many iterations per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        std::hint::black_box(routine());
        self.sample = Some(start.elapsed());
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    // Warm-up sample, discarded.
    let mut bencher = Bencher { sample: None };
    f(&mut bencher);
    let mut samples: Vec<Duration> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut bencher = Bencher { sample: None };
        f(&mut bencher);
        samples.push(
            bencher
                .sample
                .expect("benchmark closure must call Bencher::iter"),
        );
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    let rate = throughput
        .map(|t| {
            let secs = median.as_secs_f64().max(f64::MIN_POSITIVE);
            match t {
                Throughput::Elements(n) => format!("  {:>12.3} Melem/s", n as f64 / secs / 1e6),
                Throughput::Bytes(n) => {
                    format!("  {:>12.3} MiB/s", n as f64 / secs / (1 << 20) as f64)
                }
            }
        })
        .unwrap_or_default();
    println!(
        "{id:<48} median {:>12} ({} samples){rate}",
        format_duration(median),
        samples.len(),
    );
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 10_000 {
        format!("{nanos} ns")
    } else if nanos < 10_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 10_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Declares a named group of benchmark functions, mirroring criterion's
/// two accepted forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `main` running each declared group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

/// Re-export matching `criterion::black_box` (deprecated upstream in favor
/// of `std::hint::black_box`, which it simply forwards to).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_input_benches_run() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(4));
        let mut runs = 0usize;
        group.bench_function("plain", |b| b.iter(|| runs += 1));
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7u64, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
        // warm-up + 3 samples
        assert_eq!(runs, 4);
    }
}
