//! Offline shim for the `serde` crate (see `shims/README.md`).
//!
//! Real serde serializes through a visitor; this shim collapses that to a
//! single target — an in-memory JSON [`Value`] tree that the `serde_json`
//! shim renders to text. The derive macro is unavailable offline, so types
//! implement [`Serialize`] by hand (a handful of lines per struct).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

/// An in-memory JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any integer that fits in `i64`.
    Int(i64),
    /// Unsigned integers beyond `i64::MAX`.
    UInt(u64),
    /// Floating point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object, with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object; `None` for other variants or a
    /// missing key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `f64` — numbers only (ints widen losslessly up to
    /// 2^53, like real `serde_json`).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as an `i64`, when it is an integer in range.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) => i64::try_from(*u).ok(),
            _ => None,
        }
    }

    /// The value as a `u64`, when it is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) => u64::try_from(*i).ok(),
            Value::UInt(u) => Some(*u),
            _ => None,
        }
    }

    /// The value as a string slice.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an object's `(key, value)` pairs, insertion-ordered.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }
}

/// Conversion to a JSON [`Value`] — the shim's stand-in for serde's
/// `Serialize` visitor contract.
pub trait Serialize {
    /// Converts `self` into a JSON value tree.
    fn to_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}

impl_ser_int!(i8, i16, i32, i64, isize, u8, u16, u32);

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        if *self <= i64::MAX as u64 {
            Value::Int(*self as i64)
        } else {
            Value::UInt(*self)
        }
    }
}

impl Serialize for usize {
    fn to_value(&self) -> Value {
        (*self as u64).to_value()
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

macro_rules! impl_ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}

impl_ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_and_containers() {
        assert_eq!(1u8.to_value(), Value::Int(1));
        assert_eq!(u64::MAX.to_value(), Value::UInt(u64::MAX));
        assert_eq!("x".to_value(), Value::Str("x".into()));
        assert_eq!(
            vec![1i64, 2].to_value(),
            Value::Array(vec![Value::Int(1), Value::Int(2)])
        );
        assert_eq!(
            ("a".to_string(), 0.5f64, "b".to_string()).to_value(),
            Value::Array(vec![
                Value::Str("a".into()),
                Value::Float(0.5),
                Value::Str("b".into())
            ])
        );
        assert_eq!(None::<i64>.to_value(), Value::Null);
    }

    #[test]
    fn accessors() {
        let v = Value::Object(vec![
            ("n".into(), Value::Int(3)),
            ("f".into(), Value::Float(0.5)),
            ("s".into(), Value::Str("x".into())),
            ("a".into(), Value::Array(vec![Value::Bool(true)])),
        ]);
        assert_eq!(v.get("n").and_then(Value::as_i64), Some(3));
        assert_eq!(v.get("n").and_then(Value::as_f64), Some(3.0));
        assert_eq!(v.get("n").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("f").and_then(Value::as_f64), Some(0.5));
        assert_eq!(v.get("f").and_then(Value::as_i64), None);
        assert_eq!(v.get("s").and_then(Value::as_str), Some("x"));
        assert_eq!(
            v.get("a").and_then(Value::as_array),
            Some(&[Value::Bool(true)][..])
        );
        assert_eq!(v.get("missing"), None);
        assert_eq!(Value::Int(-1).as_u64(), None);
        assert_eq!(Value::UInt(u64::MAX).as_i64(), None);
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(v.as_object().map(<[_]>::len), Some(4));
        assert_eq!(Value::Null.get("x"), None);
    }
}
