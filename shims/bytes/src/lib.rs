//! Offline shim for the `bytes` crate (see `shims/README.md`).
//!
//! Implements the subset of [`Buf`] / [`BufMut`] the Corra serializers use:
//! little-endian integer put/get, raw slices, and `remaining()`. `&[u8]`
//! is the reader (consuming from the front) and `Vec<u8>` the writer.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

/// Read cursor over a contiguous byte source.
///
/// Mirrors `bytes::Buf`: every `get_*` consumes from the front and panics
/// if fewer than the required bytes remain — callers are expected to check
/// [`Buf::remaining`] first, which is exactly what the Corra deserializers
/// do to turn truncation into `Err` instead of a panic.
pub trait Buf {
    /// Number of bytes left to consume.
    fn remaining(&self) -> usize;

    /// Returns the unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Consumes `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Copies `dst.len()` bytes into `dst` and consumes them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads one signed byte.
    fn get_i8(&mut self) -> i8 {
        self.get_u8() as i8
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `i16`.
    fn get_i16_le(&mut self) -> i16 {
        self.get_u16_le() as i16
    }

    /// Reads a little-endian `i32`.
    fn get_i32_le(&mut self) -> i32 {
        self.get_u32_le() as i32
    }

    /// Reads a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        self.get_u64_le() as i64
    }
}

impl Buf for &[u8] {
    #[inline]
    fn remaining(&self) -> usize {
        self.len()
    }

    #[inline]
    fn chunk(&self) -> &[u8] {
        self
    }

    #[inline]
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        *self = &self[cnt..];
    }
}

impl<B: Buf + ?Sized> Buf for &mut B {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }

    fn chunk(&self) -> &[u8] {
        (**self).chunk()
    }

    fn advance(&mut self, cnt: usize) {
        (**self).advance(cnt)
    }
}

/// Append-only write sink.
///
/// Mirrors `bytes::BufMut` for the little-endian writers the Corra
/// serializers use. Backed by `Vec<u8>`, so writes never fail.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends one signed byte.
    fn put_i8(&mut self, v: i8) {
        self.put_u8(v as u8);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i16`.
    fn put_i16_le(&mut self, v: i16) {
        self.put_u16_le(v as u16);
    }

    /// Appends a little-endian `i32`.
    fn put_i32_le(&mut self, v: i32) {
        self.put_u32_le(v as u32);
    }

    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_u64_le(v as u64);
    }
}

impl BufMut for Vec<u8> {
    #[inline]
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl<B: BufMut + ?Sized> BufMut for &mut B {
    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = Vec::new();
        buf.put_u8(0xAB);
        buf.put_u16_le(0xBEEF);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(0x0123_4567_89AB_CDEF);
        buf.put_i64_le(-42);
        buf.put_slice(b"tail");
        let mut r: &[u8] = &buf;
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u16_le(), 0xBEEF);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_i64_le(), -42);
        assert_eq!(r.remaining(), 4);
        let mut tail = [0u8; 4];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"tail");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut r: &[u8] = &[1, 2];
        let _ = r.get_u32_le();
    }
}
