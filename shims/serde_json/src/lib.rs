//! Offline shim for the `serde_json` crate (see `shims/README.md`).
//!
//! Renders the `serde` shim's [`Value`] tree to JSON text ([`to_string`]),
//! parses JSON text back into a [`Value`] tree ([`from_str`] — used by the
//! `bench_diff` regression tripwire to read committed `BENCH_*.json`
//! baselines), and provides a [`json!`] macro covering the
//! object/array/expression forms the bench binaries use.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fmt::Write as _;

pub use serde::Value;

/// Serialization error. The shim's writer is infallible, so this is only
/// here to keep `serde_json::to_string` signatures source-compatible.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Converts any [`serde::Serialize`] value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Renders `value` as compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Value::Float(f) => {
            if f.is_finite() {
                // Ryu-style shortest output isn't available; `{}` on f64 is
                // already shortest-roundtrip in Rust.
                let _ = write!(out, "{f}");
            } else {
                // Real serde_json maps non-finite floats to null.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses JSON text into a [`Value`] tree.
///
/// Covers the full JSON grammar (nested objects/arrays, escape sequences
/// including `\uXXXX` surrogate pairs, exponent-form numbers). Integers
/// land in `Value::Int`/`Value::UInt` exactly; everything else numeric
/// becomes `Value::Float`. Trailing garbage after the document is an
/// error, matching real `serde_json`.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON document"));
    }
    Ok(v)
}

/// Recursion guard: real serde_json defaults to 128 nesting levels.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), Error> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("recursion limit exceeded"));
        }
        match self.peek() {
            Some(b'{') => {
                self.depth += 1;
                let v = self.object();
                self.depth -= 1;
                v
            }
            Some(b'[') => {
                self.depth += 1;
                let v = self.array();
                self.depth -= 1;
                v
            }
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a low surrogate must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let ch = s.chars().next().expect("non-empty by peek");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(digits, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == int_start {
            return Err(self.err("expected digits"));
        }
        // Leading zeros are invalid JSON ("01"), but a lone "0" is fine.
        if self.bytes[int_start] == b'0' && self.pos - int_start > 1 {
            return Err(Error(format!("leading zero at byte {int_start}")));
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            let frac_start = self.pos;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("expected exponent digits"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ascii digits are valid utf-8");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error(format!("invalid number at byte {start}")))
    }
}

/// Builds a [`Value`] from JSON-ish syntax: `json!({"k": expr, ...})`,
/// `json!([expr, ...])`, `json!(null)` or `json!(expr)`. Values are
/// arbitrary expressions implementing `serde::Serialize` (nest objects via
/// inner `json!` calls).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:tt : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( (($key).to_string(), $crate::to_value(&$val)) ),*
        ])
    };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$item) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_json() {
        let v = json!({
            "name": "corra",
            "saving": 0.583,
            "rows": 59_986_052usize,
            "tags": vec!["a", "b"],
            "nested": json!({"x": 1i64}),
        });
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"name":"corra","saving":0.583,"rows":59986052,"tags":["a","b"],"nested":{"x":1}}"#
        );
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(
            to_string(&"a\"b\\c\n\u{1}").unwrap(),
            "\"a\\\"b\\\\c\\n\\u0001\""
        );
    }

    #[test]
    fn non_finite_floats_are_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }

    #[test]
    fn array_and_expr_forms() {
        assert_eq!(to_string(&json!([1i64, 2i64])).unwrap(), "[1,2]");
        assert_eq!(to_string(&json!(null)).unwrap(), "null");
        assert_eq!(to_string(&json!(3.5f64)).unwrap(), "3.5");
    }

    #[test]
    fn parse_round_trips_the_bench_doc_shape() {
        let v = json!({
            "bench": "serve",
            "quick": true,
            "none": json!(null),
            "series": vec![
                json!({"name": "cold", "p99_us": 12.5, "bytes": 1048576u64}),
            ],
        });
        let text = to_string(&v).unwrap();
        let parsed = from_str(&text).unwrap();
        assert_eq!(parsed, v);
        let p99 = parsed.get("series").unwrap().as_array().unwrap()[0]
            .get("p99_us")
            .and_then(Value::as_f64);
        assert_eq!(p99, Some(12.5));
    }

    #[test]
    fn parse_scalars_whitespace_and_nesting() {
        assert_eq!(from_str(" null ").unwrap(), Value::Null);
        assert_eq!(from_str("true").unwrap(), Value::Bool(true));
        assert_eq!(from_str("-42").unwrap(), Value::Int(-42));
        assert_eq!(from_str("0").unwrap(), Value::Int(0));
        assert_eq!(
            from_str("18446744073709551615").unwrap(),
            Value::UInt(u64::MAX)
        );
        assert_eq!(from_str("1e3").unwrap(), Value::Float(1e3));
        assert_eq!(from_str("-2.5E-2").unwrap(), Value::Float(-0.025));
        assert_eq!(
            from_str("[ [1, 2] , {\"a\" : [] } ]").unwrap(),
            Value::Array(vec![
                Value::Array(vec![Value::Int(1), Value::Int(2)]),
                Value::Object(vec![("a".into(), Value::Array(vec![]))]),
            ])
        );
        assert_eq!(from_str("{}").unwrap(), Value::Object(vec![]));
    }

    #[test]
    fn parse_string_escapes() {
        assert_eq!(
            from_str(r#""a\"b\\c\n\t\u0041\u00e9""#).unwrap(),
            Value::Str("a\"b\\c\n\tA\u{e9}".into())
        );
        // Surrogate pair for U+1F600.
        assert_eq!(
            from_str(r#""\ud83d\ude00""#).unwrap(),
            Value::Str("\u{1F600}".into())
        );
        assert_eq!(from_str("\"héllo\"").unwrap(), Value::Str("héllo".into()));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "[1 2]",
            "{\"a\"}",
            "{\"a\":}",
            "01",
            "1.",
            "1e",
            "tru",
            "\"\\q\"",
            "\"\\ud800x\"",
            "nullx",
            "[1]]",
            "+1",
            "\"unterminated",
        ] {
            assert!(from_str(bad).is_err(), "accepted malformed input: {bad:?}");
        }
    }
}
