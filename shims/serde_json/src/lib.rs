//! Offline shim for the `serde_json` crate (see `shims/README.md`).
//!
//! Renders the `serde` shim's [`Value`] tree to JSON text ([`to_string`])
//! and provides a [`json!`] macro covering the object/array/expression
//! forms the bench binaries use.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::fmt::Write as _;

pub use serde::Value;

/// Serialization error. The shim's writer is infallible, so this is only
/// here to keep `serde_json::to_string` signatures source-compatible.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Converts any [`serde::Serialize`] value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Renders `value` as compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Value::Float(f) => {
            if f.is_finite() {
                // Ryu-style shortest output isn't available; `{}` on f64 is
                // already shortest-roundtrip in Rust.
                let _ = write!(out, "{f}");
            } else {
                // Real serde_json maps non-finite floats to null.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Builds a [`Value`] from JSON-ish syntax: `json!({"k": expr, ...})`,
/// `json!([expr, ...])`, `json!(null)` or `json!(expr)`. Values are
/// arbitrary expressions implementing `serde::Serialize` (nest objects via
/// inner `json!` calls).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:tt : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( (($key).to_string(), $crate::to_value(&$val)) ),*
        ])
    };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$item) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_json() {
        let v = json!({
            "name": "corra",
            "saving": 0.583,
            "rows": 59_986_052usize,
            "tags": vec!["a", "b"],
            "nested": json!({"x": 1i64}),
        });
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"name":"corra","saving":0.583,"rows":59986052,"tags":["a","b"],"nested":{"x":1}}"#
        );
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(
            to_string(&"a\"b\\c\n\u{1}").unwrap(),
            "\"a\\\"b\\\\c\\n\\u0001\""
        );
    }

    #[test]
    fn non_finite_floats_are_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }

    #[test]
    fn array_and_expr_forms() {
        assert_eq!(to_string(&json!([1i64, 2i64])).unwrap(), "[1,2]");
        assert_eq!(to_string(&json!(null)).unwrap(), "null");
        assert_eq!(to_string(&json!(3.5f64)).unwrap(), "3.5");
    }
}
