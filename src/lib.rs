//! # Corra: Correlation-Aware Column Compression
//!
//! A Rust implementation of the horizontal, correlation-aware column
//! encoding schemes from *"Corra: Correlation-Aware Column Compression"*
//! (Liu, Stoian, van Renen, Kipf — VLDB 2024 / arXiv:2403.17229), together
//! with the columnar substrate, single-column baseline, dataset generators
//! and evaluation harness needed to reproduce the paper end to end.
//!
//! ## Quick start
//!
//! ```
//! use corra::prelude::*;
//!
//! // TPC-H-style correlated date columns in a data block.
//! let dates = corra::datagen::LineitemDates::generate(10_000, 42);
//! let mut blocks = dates.into_table().into_blocks(1_000_000);
//! let block = blocks.remove(0);
//!
//! // Diff-encode receiptdate w.r.t. shipdate (§2.1 of the paper).
//! let config = CompressionConfig::baseline()
//!     .with("l_receiptdate", ColumnPlan::NonHier { reference: "l_shipdate".into() });
//! let compressed = CompressedBlock::compress(&block, &config).unwrap();
//!
//! // Horizontal beats vertical on correlated data.
//! let baseline = CompressedBlock::compress(&block, &CompressionConfig::baseline()).unwrap();
//! assert!(compressed.column_bytes("l_receiptdate").unwrap()
//!     < baseline.column_bytes("l_receiptdate").unwrap() / 2);
//!
//! // Random-access queries decompress through the reference column.
//! let sel = SelectionVector::new(vec![0, 42, 9_999]);
//! let out = query_column(&compressed, "l_receiptdate", &sel).unwrap();
//! assert_eq!(out.len(), 3);
//! ```
//!
//! ## Crate map
//!
//! | Module | Contents |
//! |---|---|
//! | [`columnar`] | storage substrate: bit-packing, columns, blocks, selection vectors |
//! | [`encodings`] | vertical schemes: Plain, FOR, Dict, RLE, Delta, Frequency + baseline chooser |
//! | [`core`] | Corra's horizontal schemes, optimizer, detection, block compressor, query kernels, indexed table store |
//! | [`datagen`] | synthetic TPC-H / LDBC / DMV / Taxi generators |
//! | [`c3`] | the C3 comparator (DFOR, Numerical, 1-to-1) |

#![warn(missing_docs)]

pub use corra_c3 as c3;
pub use corra_columnar as columnar;
pub use corra_core as core;
pub use corra_datagen as datagen;
pub use corra_encodings as encodings;

/// The most commonly used types, re-exported flat.
pub mod prelude {
    pub use corra_columnar::{
        BitPackedVec, Column, DataBlock, DataType, Field, Schema, SelectionVector, StringPool,
        Table, DEFAULT_BLOCK_ROWS,
    };
    pub use corra_core::{
        query_both, query_column, query_two_columns, scan, scan_blocks, scan_query, Assignment,
        BlockView, ColumnGraph, ColumnPlan, CompressedBlock, CompressionConfig, Formula, HierInt,
        HierStr, MultiRefInt, NonHierInt, OutlierRegion, Predicate, QueryOutput, ScanStats,
        TableReader, TableWriter,
    };
    pub use corra_encodings::{
        choose_int_baseline, choose_int_full, DictInt, DictStr, ForInt, IntAccess, IntEncoding,
        PlainInt, StrAccess,
    };
}
