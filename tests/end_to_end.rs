//! End-to-end integration tests: dataset generation → configuration →
//! multi-block compression → serialization → independent block decode →
//! queries, for all four paper datasets.

use corra::datagen::{
    DmvParams, DmvTable, LineitemDates, MessageParams, MessageTable, TaxiParams, TaxiTable,
};
use corra::prelude::*;

const BLOCK: usize = 100_000; // small blocks keep the test fast

fn roundtrip_all_columns(blocks: &[DataBlock], compressed: &[CompressedBlock]) {
    for (raw, comp) in blocks.iter().zip(compressed) {
        for field in raw.schema().fields() {
            let got = comp.decompress(field.name()).expect("decompress");
            assert_eq!(
                &got,
                raw.column(field.name()).unwrap(),
                "column {}",
                field.name()
            );
        }
    }
}

#[test]
fn tpch_pipeline() {
    let table = LineitemDates::generate(250_000, 1).into_table();
    let cfg = CompressionConfig::baseline()
        .with(
            "l_commitdate",
            ColumnPlan::NonHier {
                reference: "l_shipdate".into(),
            },
        )
        .with(
            "l_receiptdate",
            ColumnPlan::NonHier {
                reference: "l_shipdate".into(),
            },
        );
    let blocks = table.into_blocks(BLOCK);
    assert_eq!(blocks.len(), 3);
    let compressed = corra::core::compress_blocks(&blocks, &cfg, 3).expect("compress");
    roundtrip_all_columns(&blocks, &compressed);
    // Per-block self-containment through bytes.
    for (raw, comp) in blocks.iter().zip(&compressed) {
        let back = CompressedBlock::from_bytes(&comp.to_bytes().expect("encode")).expect("decode");
        for field in raw.schema().fields() {
            assert_eq!(
                &back.decompress(field.name()).unwrap(),
                raw.column(field.name()).unwrap()
            );
        }
    }
    // Paper saving rates hold per block (bit-width arithmetic is exact).
    for comp in &compressed {
        let ship = comp.column_bytes("l_shipdate").unwrap() as f64;
        let receipt = comp.column_bytes("l_receiptdate").unwrap() as f64;
        let commit = comp.column_bytes("l_commitdate").unwrap() as f64;
        assert!(
            (1.0 - receipt / ship - 0.583).abs() < 0.01,
            "receipt saving"
        );
        assert!((1.0 - commit / ship - 0.333).abs() < 0.01, "commit saving");
    }
}

#[test]
fn dmv_pipeline() {
    let table = DmvTable::generate(DmvParams::scaled(200_000), 2).into_table();
    // The paper's Table 2 evaluates (city -> zip) and (state -> city) as
    // separate configurations: a column cannot be reference and
    // diff-encoded at once (no chains).
    let zip_cfg = CompressionConfig::baseline().with(
        "zip",
        ColumnPlan::Hier {
            reference: "city".into(),
        },
    );
    let city_cfg = CompressionConfig::baseline().with(
        "city",
        ColumnPlan::Hier {
            reference: "state".into(),
        },
    );
    let chained = CompressionConfig::baseline()
        .with(
            "zip",
            ColumnPlan::Hier {
                reference: "city".into(),
            },
        )
        .with(
            "city",
            ColumnPlan::Hier {
                reference: "state".into(),
            },
        );
    let blocks = table.into_blocks(BLOCK);
    assert!(
        CompressedBlock::compress(&blocks[0], &chained).is_err(),
        "chained references must be rejected"
    );
    let zip_comp = corra::core::compress_blocks(&blocks, &zip_cfg, 2).expect("compress zip");
    let city_comp = corra::core::compress_blocks(&blocks, &city_cfg, 2).expect("compress city");
    roundtrip_all_columns(&blocks, &zip_comp);
    roundtrip_all_columns(&blocks, &city_comp);
    // Hierarchical zip must clearly beat the baseline; city only slightly.
    let baseline =
        corra::core::compress_blocks(&blocks, &CompressionConfig::baseline(), 2).expect("baseline");
    let zip_saving = 1.0
        - zip_comp[0].column_bytes("zip").unwrap() as f64
            / baseline[0].column_bytes("zip").unwrap() as f64;
    assert!(zip_saving > 0.25, "zip saving {zip_saving}");
    let city_saving = 1.0
        - city_comp[0].column_bytes("city").unwrap() as f64
            / baseline[0].column_bytes("city").unwrap() as f64;
    assert!(
        city_saving > -0.05 && city_saving < 0.3,
        "city saving {city_saving}"
    );
}

#[test]
fn ldbc_pipeline() {
    let table = MessageTable::generate(MessageParams::scaled(300_000), 3).into_table();
    let cfg = CompressionConfig::baseline().with(
        "ip",
        ColumnPlan::Hier {
            reference: "countryid".into(),
        },
    );
    let blocks = table.into_blocks(BLOCK);
    let compressed = corra::core::compress_blocks(&blocks, &cfg, 4).expect("compress");
    roundtrip_all_columns(&blocks, &compressed);
    let baseline =
        corra::core::compress_blocks(&blocks, &CompressionConfig::baseline(), 4).expect("baseline");
    let saving = 1.0
        - compressed[0].column_bytes("ip").unwrap() as f64
            / baseline[0].column_bytes("ip").unwrap() as f64;
    assert!(saving > 0.05, "ip saving {saving}");
}

#[test]
fn taxi_pipeline() {
    let mut taxi = TaxiTable::generate(
        TaxiParams {
            rows: 200_000,
            ..Default::default()
        },
        4,
    );
    assert_eq!(
        corra::datagen::taxi::clean(&mut taxi),
        0,
        "generator is clean"
    );
    let table = taxi.into_table();
    let cfg = CompressionConfig::baseline()
        .with(
            "dropoff",
            ColumnPlan::NonHier {
                reference: "pickup".into(),
            },
        )
        .with(
            "total_amount",
            ColumnPlan::MultiRef {
                groups: TaxiTable::reference_groups(),
                code_bits: 2,
            },
        );
    let blocks = table.into_blocks(BLOCK);
    let compressed = corra::core::compress_blocks(&blocks, &cfg, 2).expect("compress");
    roundtrip_all_columns(&blocks, &compressed);
    let baseline =
        corra::core::compress_blocks(&blocks, &CompressionConfig::baseline(), 2).expect("baseline");
    let total_saving = 1.0
        - compressed[0].column_bytes("total_amount").unwrap() as f64
            / baseline[0].column_bytes("total_amount").unwrap() as f64;
    assert!(total_saving > 0.75, "total_amount saving {total_saving}");
    let drop_saving = 1.0
        - compressed[0].column_bytes("dropoff").unwrap() as f64
            / baseline[0].column_bytes("dropoff").unwrap() as f64;
    assert!(drop_saving > 0.2, "dropoff saving {drop_saving}");
}

#[test]
fn queries_match_raw_across_selectivities() {
    let table = LineitemDates::generate(120_000, 9).into_table();
    let raw_receipt = table
        .column("l_receiptdate")
        .unwrap()
        .as_i64()
        .unwrap()
        .to_vec();
    let cfg = CompressionConfig::baseline().with(
        "l_receiptdate",
        ColumnPlan::NonHier {
            reference: "l_shipdate".into(),
        },
    );
    let blocks = table.into_blocks(200_000);
    let comp = CompressedBlock::compress(&blocks[0], &cfg).expect("compress");
    for selectivity in [0.001, 0.01, 0.1, 0.5, 1.0] {
        for sel in corra::columnar::selection::workload(comp.rows(), selectivity, 3, 77) {
            let got = corra::core::query_column(&comp, "l_receiptdate", &sel).unwrap();
            let want: Vec<i64> = sel
                .positions()
                .iter()
                .map(|&p| raw_receipt[p as usize])
                .collect();
            assert_eq!(got.as_int().unwrap(), &want[..]);
        }
    }
}

#[test]
fn optimizer_to_block_config_pipeline() {
    // Fig. 2 machinery driving the block compressor end to end.
    let d = LineitemDates::generate(150_000, 5);
    let columns: Vec<(&str, &[i64])> = vec![
        ("l_shipdate", &d.shipdate),
        ("l_commitdate", &d.commitdate),
        ("l_receiptdate", &d.receiptdate),
    ];
    let graph = corra::core::ColumnGraph::measure_sampled(&columns, 50_000).unwrap();
    let assignment = graph.greedy();
    // Convert the optimizer output into a block configuration.
    let mut cfg = CompressionConfig::baseline();
    for (i, a) in assignment.iter().enumerate() {
        if let Assignment::DiffEncoded { reference } = a {
            cfg.set(
                columns[i].0,
                ColumnPlan::NonHier {
                    reference: columns[*reference].0.into(),
                },
            );
        }
    }
    let table = d.into_table();
    let blocks = table.into_blocks(200_000);
    let comp = CompressedBlock::compress(&blocks[0], &cfg).expect("compress");
    let baseline = CompressedBlock::compress(&blocks[0], &CompressionConfig::baseline()).unwrap();
    assert!(comp.total_bytes() < baseline.total_bytes());
    for field in blocks[0].schema().fields() {
        assert_eq!(
            &comp.decompress(field.name()).unwrap(),
            blocks[0].column(field.name()).unwrap()
        );
    }
}

#[test]
fn c3_comparison_pipeline() {
    // Table 3's protocol: C3 chooses its scheme per pair; Corra uses
    // non-hierarchical. Both must decode losslessly and land in the same
    // size ballpark on the date pair.
    let d = LineitemDates::generate(100_000, 12);
    let corra_enc = corra::core::NonHierInt::encode(&d.receiptdate, &d.shipdate).unwrap();
    let c3_enc = corra::c3::choose(&d.receiptdate, &d.shipdate).unwrap();
    let mut a = Vec::new();
    corra_enc.decode_into(&d.shipdate, &mut a).unwrap();
    assert_eq!(a, d.receiptdate);
    let mut b = Vec::new();
    c3_enc.decode_into(&d.shipdate, &mut b).unwrap();
    assert_eq!(b, d.receiptdate);
    let ratio = corra_enc.compressed_bytes() as f64 / c3_enc.compressed_bytes() as f64;
    assert!((0.8..1.25).contains(&ratio), "corra vs c3 ratio {ratio}");
}

#[test]
fn failure_injection_corrupt_blocks() {
    let table = LineitemDates::generate(50_000, 6).into_table();
    let cfg = CompressionConfig::baseline().with(
        "l_receiptdate",
        ColumnPlan::NonHier {
            reference: "l_shipdate".into(),
        },
    );
    let blocks = table.into_blocks(100_000);
    let bytes = CompressedBlock::compress(&blocks[0], &cfg)
        .unwrap()
        .to_bytes()
        .unwrap();
    // Bad magic, bad version, truncations: errors, never panics.
    let mut bad = bytes.clone();
    bad[0] = b'!';
    assert!(CompressedBlock::from_bytes(&bad).is_err());
    let mut bad = bytes.clone();
    bad[4] = 0x7F;
    assert!(CompressedBlock::from_bytes(&bad).is_err());
    for cut in [0, 5, 11, bytes.len() / 2, bytes.len() - 1] {
        assert!(
            CompressedBlock::from_bytes(&bytes[..cut]).is_err(),
            "cut {cut}"
        );
    }
}

#[test]
fn taxi_cleaning_failure_injection() {
    let mut taxi = TaxiTable::generate(
        TaxiParams {
            rows: 10_000,
            ..Default::default()
        },
        8,
    );
    taxi.pickup[100] = taxi.dropoff[100] + 1; // dropoff before pickup
    taxi.tip_amount[200] = -1;
    taxi.fare_amount[300] = corra::datagen::taxi::MAX_MONEY_CENTS * 2;
    assert!(corra::datagen::taxi::validate(&taxi).is_err());
    let removed = corra::datagen::taxi::clean(&mut taxi);
    assert_eq!(removed, 3);
    assert!(corra::datagen::taxi::validate(&taxi).is_ok());
    assert_eq!(taxi.rows(), 9_997);
}

/// The C3 comparator end to end, one dataset per C3 scheme family: every
/// scheme the chooser can select is exercised against generator data and
/// checked for losslessness through [`corra::c3::C3Encoding::decode_into`].
///
/// This is Table 3's protocol ("we let C3 choose the encoding scheme for a
/// given pair of columns") driven through all six crates: datagen produces
/// the pairs, encodings supplies the dictionary for the hierarchical pair,
/// core provides the Corra side of the comparison, and c3 picks its scheme.
#[test]
fn c3_scheme_selection_pipeline() {
    // (a) Bounded date diffs — DFOR territory (ties with Numerical at
    // slope 1, so only decode + size are asserted).
    let d = LineitemDates::generate(60_000, 21);
    let enc = corra::c3::choose(&d.receiptdate, &d.shipdate).unwrap();
    let mut out = Vec::new();
    enc.decode_into(&d.shipdate, &mut out).unwrap();
    assert_eq!(out, d.receiptdate);
    assert!(
        enc.compressed_bytes() < 60_000,
        "bounded diffs must pack below 8 bits/row"
    );

    // (b) Affine relation — Numerical must win.
    let base: Vec<i64> = (0..40_000).map(|i| i as i64 % 9_001).collect();
    let affine: Vec<i64> = base
        .iter()
        .enumerate()
        .map(|(i, &r)| 7 * r + (i as i64 % 3))
        .collect();
    let enc = corra::c3::choose(&affine, &base).unwrap();
    assert_eq!(enc.scheme(), "Numerical");
    let mut out = Vec::new();
    enc.decode_into(&base, &mut out).unwrap();
    assert_eq!(out, affine);

    // (c) DMV (city, zip): the same pair Table 3 keys by the city's
    // dictionary code. A near-functional dependency: 1-to-1 or the
    // hierarchical family may win, but never plain DFOR.
    let dmv = DmvTable::generate(DmvParams::scaled(50_000), 11);
    let city_dict = corra::encodings::DictStr::encode_pool(&dmv.city);
    let city_codes: Vec<i64> = (0..dmv.zip.len())
        .map(|i| city_dict.code_at(i) as i64)
        .collect();
    let enc = corra::c3::choose(&dmv.zip, &city_codes).unwrap();
    assert_ne!(
        enc.scheme(),
        "DFOR",
        "hierarchical data must not fall back to plain DFOR"
    );
    let mut out = Vec::new();
    enc.decode_into(&city_codes, &mut out).unwrap();
    assert_eq!(out, dmv.zip);

    // (d) Corra vs C3 on the same pair, sharing one baseline — both must
    // save substantially against the single-column chooser (Table 3 shows
    // 53.7% vs 59.1% at paper scale).
    let baseline = corra::encodings::choose_int_baseline(&dmv.zip).compressed_bytes();
    let parent_codes: Vec<u32> = (0..dmv.zip.len()).map(|i| city_dict.code_at(i)).collect();
    let corra_enc = HierInt::encode(&dmv.zip, &parent_codes, city_dict.distinct()).unwrap();
    for (label, bytes) in [
        ("corra", corra_enc.compressed_bytes()),
        ("c3", enc.compressed_bytes()),
    ] {
        let saving = 1.0 - bytes as f64 / baseline as f64;
        assert!(saving > 0.25, "{label} saving {saving} too small");
    }
}
