//! Taxi multi-reference scenario (paper §2.3, Tab. 1, Fig. 4): encode
//! `total_amount` against the three reference groups A/B/C, print the
//! discovered formula mixture, and exercise the outlier region.
//!
//! ```sh
//! cargo run --release --example taxi_multiref
//! ```

use corra::core::detect::detect_multiref;
use corra::datagen::{TaxiParams, TaxiTable};
use corra::prelude::*;

fn main() {
    let rows = 1_000_000;
    let taxi = TaxiTable::generate(
        TaxiParams {
            rows,
            ..Default::default()
        },
        23,
    );
    println!("NYC Taxi trips, {rows} rows (paper: 37,891,377 after cleaning)");

    // 1. Formula discovery on the raw group sums (future-work extension):
    let [a, b, c] = taxi.group_sums();
    let refs: Vec<(&str, &[i64])> = vec![("A", &a), ("B", &b), ("C", &c)];
    let discovered = detect_multiref(&taxi.total_amount, &refs, 200_000, 4).expect("detect");
    println!("\ndiscovered formulas (sampled), cf. paper Table 1:");
    for (f, frac) in &discovered.formulas {
        println!("  {:<10} {:>6.2}%", f.describe(), frac * 100.0);
    }
    println!(
        "  {:<10} {:>6.2}%  (outliers)",
        "none",
        discovered.outlier_rate * 100.0
    );

    // 2. Block-level compression with the paper's group structure.
    let table = taxi.into_table();
    let block = table.into_blocks(DEFAULT_BLOCK_ROWS).remove(0);
    let corra_cfg = CompressionConfig::baseline().with(
        "total_amount",
        ColumnPlan::MultiRef {
            groups: TaxiTable::reference_groups(),
            code_bits: 2,
        },
    );
    let baseline = CompressedBlock::compress(&block, &CompressionConfig::baseline()).unwrap();
    let corra = CompressedBlock::compress(&block, &corra_cfg).unwrap();
    let bb = baseline.column_bytes("total_amount").unwrap();
    let cb = corra.column_bytes("total_amount").unwrap();
    println!(
        "\ntotal_amount: baseline {} B -> corra {} B (saving {:.2}%, paper: 85.16%)",
        bb,
        cb,
        100.0 * (1.0 - cb as f64 / bb as f64)
    );

    // 3. Also diff-encode dropoff w.r.t. pickup (the paper's other Taxi row).
    let ts_cfg = CompressionConfig::baseline().with(
        "dropoff",
        ColumnPlan::NonHier {
            reference: "pickup".into(),
        },
    );
    let ts = CompressedBlock::compress(&block, &ts_cfg).unwrap();
    let bd = baseline.column_bytes("dropoff").unwrap();
    let cd = ts.column_bytes("dropoff").unwrap();
    println!(
        "dropoff:      baseline {} B -> corra {} B (saving {:.2}%, paper: 30.6%)",
        bd,
        cd,
        100.0 * (1.0 - cd as f64 / bd as f64)
    );

    // 4. Random access through all eight reference columns, outliers
    //    included (the Fig. 4 decompression path).
    let sel_vectors = corra::columnar::selection::workload(corra.rows(), 0.01, 1, 5);
    let got = query_column(&corra, "total_amount", &sel_vectors[0]).unwrap();
    let raw = block.column("total_amount").unwrap().as_i64().unwrap();
    for (k, &p) in sel_vectors[0].positions().iter().enumerate() {
        assert_eq!(got.as_int().unwrap()[k], raw[p as usize]);
    }
    println!(
        "\nqueried total_amount at selectivity 0.01 through 8 reference columns: {} rows ok",
        got.len()
    );
}
