//! A tour of the optimizer and the correlation detectors on a mixed table:
//! which columns should reference which, and what the greedy strategy does
//! when correlations compete.
//!
//! ```sh
//! cargo run --release --example optimizer_tour
//! ```

use corra::core::detect::detect_nonhier;
use corra::core::{Assignment, ColumnGraph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let rows = 500_000;
    let mut rng = StdRng::seed_from_u64(99);

    // A synthetic order-processing table with competing correlations:
    //   created   — base timestamp
    //   paid      — created + minutes..hours
    //   shipped   — paid + hours..days
    //   delivered — shipped + days
    //   audit_id  — uncorrelated noise
    let created: Vec<i64> = (0..rows)
        .map(|_| 1_700_000_000 + rng.gen_range(0i64..31_536_000))
        .collect();
    let paid: Vec<i64> = created
        .iter()
        .map(|&t| t + rng.gen_range(60i64..7_200))
        .collect();
    let shipped: Vec<i64> = paid
        .iter()
        .map(|&t| t + rng.gen_range(3_600i64..259_200))
        .collect();
    let delivered: Vec<i64> = shipped
        .iter()
        .map(|&t| t + rng.gen_range(86_400i64..604_800))
        .collect();
    let audit_id: Vec<i64> = (0..rows as i64)
        .map(|i| i.wrapping_mul(2_654_435_761))
        .collect();

    let columns: Vec<(&str, &[i64])> = vec![
        ("created", &created),
        ("paid", &paid),
        ("shipped", &shipped),
        ("delivered", &delivered),
        ("audit_id", &audit_id),
    ];

    // 1. Detection pass: rank all candidate (target, reference) pairs.
    println!("top detected diff-encoding candidates (sampled):");
    let candidates = detect_nonhier(&columns, 100_000, 0.10);
    for c in candidates.iter().take(8) {
        println!(
            "  {:<10} w.r.t. {:<10} est. saving {:>5.1}%",
            columns[c.target].0,
            columns[c.reference].0,
            c.saving_rate * 100.0
        );
    }

    // 2. Full graph + greedy selection (Fig. 2 machinery). Note the paper's
    //    constraint: no chains — `shipped` cannot be diff-encoded w.r.t.
    //    `paid` if `paid` is itself diff-encoded, even though that edge has
    //    the best weight. The greedy resolves the competition by total cost.
    let graph = ColumnGraph::measure_sampled(&columns, 100_000).expect("graph");
    let assignment = graph.greedy();
    println!("\n{}", graph.render(&assignment));

    // 3. Show the chain constraint in action.
    for (i, a) in assignment.iter().enumerate() {
        if let Assignment::DiffEncoded { reference } = a {
            assert!(
                matches!(assignment[*reference], Assignment::Vertical),
                "invariant: references stay vertical"
            );
            let _ = i;
        }
    }
    println!("invariant checked: every reference column remains vertically encoded");

    // 4. Compare against brute force on this 5-column graph.
    let (best, best_cost) = graph.exhaustive_best();
    let greedy_cost = graph.total_cost(&assignment);
    println!(
        "greedy {:.2} MB vs exhaustive optimum {:.2} MB ({}among {} columns)",
        greedy_cost as f64 / 1e6,
        best_cost as f64 / 1e6,
        if greedy_cost == best_cost {
            "matched — "
        } else {
            "gap — "
        },
        best.len(),
    );
}
