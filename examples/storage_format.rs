//! Storage-format walkthrough: stream a compressed multi-block table into
//! an indexed v2 table file, then read it back three ways — full blocks,
//! single projected columns (only the referenced payloads are fetched),
//! and a footer-pruned scan that never touches pruned blocks' bytes.
//!
//! ```sh
//! cargo run --release --example storage_format
//! ```

use corra::core::store::{TableReader, TableWriter};
use corra::core::Predicate;
use corra::datagen::{MessageParams, MessageTable};
use corra::prelude::*;

fn main() {
    let rows = 2_500_000; // 3 blocks: 1M + 1M + 0.5M
    let table = MessageTable::generate(MessageParams::scaled(rows), 31).into_table();
    println!("LDBC message table, {rows} rows -> blocks of {DEFAULT_BLOCK_ROWS}");

    let cfg = CompressionConfig::baseline().with(
        "ip",
        ColumnPlan::Hier {
            reference: "countryid".into(),
        },
    );
    let schema = table.schema().clone();
    let blocks = table.into_blocks(DEFAULT_BLOCK_ROWS);
    let compressed = corra::core::compress_blocks(&blocks, &cfg, 4).expect("parallel compression");

    // Stream the blocks through the table writer: each segment goes to disk
    // as it is serialized, only footer metadata is buffered.
    // Process-unique scratch dir: concurrent example runs must not
    // clobber each other's table file.
    let dir = std::env::temp_dir().join(format!("corra_storage_example_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("message.corra");
    let file = std::fs::File::create(&path).expect("create file");
    let mut writer = TableWriter::with_schema(file, schema).expect("start table");
    for block in &compressed {
        writer.write_block(block).expect("stream block");
    }
    writer.finish().expect("finish table");

    let reader = TableReader::open(&path).expect("open table");
    println!(
        "wrote {} blocks, {} B total to {}",
        reader.n_blocks(),
        reader.file_bytes(),
        path.display()
    );

    // Read back only the *middle* block — the footer knows its byte range,
    // so no other block is touched.
    let middle = reader.read_block(1).expect("read middle block");
    println!(
        "independently decoded block 1: {} rows, ip column = {} B ({})",
        middle.rows(),
        middle.column_bytes("ip").unwrap(),
        middle.codec("ip").unwrap().scheme(),
    );

    // Projection pushdown: one column of one block. The reader fetches the
    // ip payload plus its countryid reference payload — nothing else.
    let before = reader.bytes_read();
    let ips = reader.read_column(1, "ip").expect("projected read");
    println!(
        "projected ip read: {} values, {} B fetched ({:.1}% of file)",
        ips.len(),
        reader.bytes_read() - before,
        (reader.bytes_read() - before) as f64 / reader.file_bytes() as f64 * 100.0,
    );

    // Footer-driven pruning: a predicate outside every block's zone map
    // answers from metadata alone — zero payload bytes read.
    let before = reader.bytes_read();
    let (sels, stats) = reader
        .scan_blocks(&Predicate::lt("ip", 0))
        .expect("pruned scan");
    println!(
        "pruned scan: {} blocks skipped via footer, {} B read, {} rows matched",
        stats.blocks_skipped_io,
        reader.bytes_read() - before,
        sels.iter().map(SelectionVector::len).sum::<usize>(),
    );

    // Corruption detection: flip a byte of the trailing magic.
    let mut bytes = std::fs::read(&path).expect("read file");
    let n = bytes.len();
    bytes[n - 1] ^= 0xFF;
    match TableReader::from_bytes(bytes) {
        Err(e) => println!("corrupted trailer correctly rejected: {e}"),
        Ok(_) => unreachable!("corruption must be detected"),
    }

    std::fs::remove_dir_all(&dir).ok();
}
