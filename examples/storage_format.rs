//! Storage-format walkthrough: write a multi-block compressed table to
//! disk, read single blocks back independently (self-containment), and
//! demonstrate corruption detection.
//!
//! ```sh
//! cargo run --release --example storage_format
//! ```

use corra::datagen::{MessageParams, MessageTable};
use corra::prelude::*;
use std::io::Write;

fn main() {
    let rows = 2_500_000; // 3 blocks: 1M + 1M + 0.5M
    let table = MessageTable::generate(MessageParams::scaled(rows), 31).into_table();
    println!("LDBC message table, {rows} rows -> blocks of {DEFAULT_BLOCK_ROWS}");

    let cfg = CompressionConfig::baseline().with(
        "ip",
        ColumnPlan::Hier {
            reference: "countryid".into(),
        },
    );
    let blocks = table.into_blocks(DEFAULT_BLOCK_ROWS);
    let compressed = corra::core::compress_blocks(&blocks, &cfg, 4).expect("parallel compression");

    // Write each block as its own self-contained segment:
    // [u64 length][block bytes] …
    let dir = std::env::temp_dir().join("corra_storage_example");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("message.corra");
    let mut file = std::fs::File::create(&path).expect("create file");
    let mut offsets = Vec::new();
    let mut offset = 0u64;
    for block in &compressed {
        let bytes = block.to_bytes();
        file.write_all(&(bytes.len() as u64).to_le_bytes())
            .expect("write len");
        file.write_all(&bytes).expect("write block");
        offsets.push(offset);
        offset += 8 + bytes.len() as u64;
    }
    drop(file);
    println!(
        "wrote {} blocks, {} B total to {}",
        compressed.len(),
        offset,
        path.display()
    );

    // Read back only the *middle* block — no other block is touched, because
    // every block is self-contained (paper §3, Experimental Setup).
    let data = std::fs::read(&path).expect("read file");
    let start = offsets[1] as usize;
    let len = u64::from_le_bytes(data[start..start + 8].try_into().unwrap()) as usize;
    let middle = CompressedBlock::from_bytes(&data[start + 8..start + 8 + len])
        .expect("self-contained decode");
    println!(
        "independently decoded block 1: {} rows, ip column = {} B ({})",
        middle.rows(),
        middle.column_bytes("ip").unwrap(),
        middle.codec("ip").unwrap().scheme(),
    );

    // Query it in isolation.
    let sel = SelectionVector::new(vec![0, 123_456, 999_999]);
    let ips = query_column(&middle, "ip", &sel).expect("query");
    println!("sampled ips from block 1: {:?}", ips.as_int().unwrap());

    // Corruption detection: flip a byte in the magic and in the payload.
    let mut corrupt = data[start + 8..start + 8 + len].to_vec();
    corrupt[0] ^= 0xFF;
    match CompressedBlock::from_bytes(&corrupt) {
        Err(e) => println!("corrupted magic correctly rejected: {e}"),
        Ok(_) => unreachable!("corruption must be detected"),
    }

    std::fs::remove_file(&path).ok();
}
