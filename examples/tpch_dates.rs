//! TPC-H date-column scenario (paper §2.1 + Fig. 2): measure the column
//! graph, let the optimizer pick the diff-encoding configuration, and
//! verify the end-to-end saving.
//!
//! ```sh
//! cargo run --release --example tpch_dates
//! ```

use corra::core::{apply_assignment, Assignment, ColumnGraph};
use corra::datagen::LineitemDates;

fn main() {
    let rows = 2_000_000;
    let d = LineitemDates::generate(rows, 7);
    println!("TPC-H lineitem dates, {rows} rows (scale with the paper: SF 10 = 59,986,052)");

    // Build the Fig. 2 graph: vertices = columns, edge a -> b = size of a
    // diff-encoded w.r.t. b. Sampled weighting keeps this fast.
    let columns: Vec<(&str, &[i64])> = vec![
        ("l_shipdate", &d.shipdate),
        ("l_commitdate", &d.commitdate),
        ("l_receiptdate", &d.receiptdate),
    ];
    let graph = ColumnGraph::measure_sampled(&columns, 200_000).expect("graph");
    let assignment = graph.greedy();
    println!("\n{}", graph.render(&assignment));

    // Apply the chosen configuration and verify losslessness.
    let encoded = apply_assignment(&columns, &assignment).expect("apply");
    let vertical_total: usize = (0..columns.len()).map(|i| graph.self_cost(i)).sum();
    let corra_total: usize = encoded.iter().map(|e| e.compressed_bytes()).sum();
    println!(
        "vertical total {:.1} MB -> corra total {:.1} MB (saved {:.1} MB, {:.1}%)",
        vertical_total as f64 / 1e6,
        corra_total as f64 / 1e6,
        (vertical_total - corra_total) as f64 / 1e6,
        100.0 * (1.0 - corra_total as f64 / vertical_total as f64),
    );

    // Spot-check decode of each diff-encoded column.
    for (i, enc) in encoded.iter().enumerate() {
        if let corra::core::EncodedColumn::Diff { enc, reference } = enc {
            let mut out = Vec::new();
            enc.decode_into(columns[*reference].1, &mut out)
                .expect("decode");
            assert_eq!(out, columns[i].1, "lossless decode of {}", columns[i].0);
            println!(
                "verified lossless: {} (diff vs {}, {} bits/value, {} outliers)",
                columns[i].0,
                columns[*reference].0,
                enc.bits(),
                enc.outliers().len(),
            );
        }
    }

    // The paper's headline numbers at this scale.
    let paper_shape = assignment
        .iter()
        .filter(|a| matches!(a, Assignment::DiffEncoded { .. }))
        .count();
    println!(
        "diff-encoded columns: {paper_shape} of {} (paper: 2 of 3)",
        columns.len()
    );
}
