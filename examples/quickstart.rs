//! Quickstart: compress a correlated table with Corra, compare against the
//! single-column baseline, and run a few random-access queries.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use corra::datagen::LineitemDates;
use corra::prelude::*;

fn main() {
    // 1. Generate TPC-H-style correlated date columns (see the paper's
    //    Fig. 1: commitdate and receiptdate track shipdate closely).
    let rows = 1_000_000;
    let table = LineitemDates::generate(rows, 42).into_table();
    println!("generated lineitem date columns: {rows} rows");

    // 2. Split into self-contained 1M-tuple blocks (paper §3).
    let mut blocks = table.into_blocks(DEFAULT_BLOCK_ROWS);
    let block = blocks.remove(0);

    // 3. Compress: baseline (best single-column scheme per column) vs.
    //    Corra (diff-encode both dependent dates w.r.t. shipdate).
    let baseline_cfg = CompressionConfig::baseline();
    let corra_cfg = CompressionConfig::baseline()
        .with(
            "l_commitdate",
            ColumnPlan::NonHier {
                reference: "l_shipdate".into(),
            },
        )
        .with(
            "l_receiptdate",
            ColumnPlan::NonHier {
                reference: "l_shipdate".into(),
            },
        );

    let baseline = CompressedBlock::compress(&block, &baseline_cfg).expect("baseline compress");
    let corra = CompressedBlock::compress(&block, &corra_cfg).expect("corra compress");

    println!(
        "\n{:<16} {:>14} {:>14} {:>8}",
        "column", "baseline", "corra", "saving"
    );
    for col in ["l_shipdate", "l_commitdate", "l_receiptdate"] {
        let b = baseline.column_bytes(col).unwrap();
        let c = corra.column_bytes(col).unwrap();
        let saving = 100.0 * (1.0 - c as f64 / b as f64);
        println!("{col:<16} {b:>12} B {c:>12} B {saving:>6.1}%");
    }
    println!(
        "\nblock total: baseline {} B -> corra {} B",
        baseline.total_bytes(),
        corra.total_bytes()
    );

    // 4. Self-contained serialization: everything needed to decompress
    //    travels inside the block.
    let bytes = corra.to_bytes().expect("serialize");
    let restored = CompressedBlock::from_bytes(&bytes).expect("roundtrip");
    println!(
        "serialized block: {} B (magic CORA, version 2)",
        bytes.len()
    );

    // 5. Random-access query at selectivity 0.001 — Corra fetches the
    //    reference column under the hood (Alg. 1 access pattern).
    let sel_vectors = corra::columnar::selection::workload(restored.rows(), 0.001, 1, 7);
    let out = query_column(&restored, "l_receiptdate", &sel_vectors[0]).expect("query");
    println!(
        "queried l_receiptdate at selectivity 0.001: {} values, first = {}",
        out.len(),
        corra::columnar::temporal::format_epoch_days(out.as_int().unwrap()[0]),
    );

    // 6. Querying both columns amortizes the reference fetch entirely.
    let (tgt, rf) = query_both(&restored, "l_receiptdate", &sel_vectors[0]).expect("query both");
    println!(
        "queried both columns: receipt[0] = {}, ship[0] = {}",
        corra::columnar::temporal::format_epoch_days(tgt.as_int().unwrap()[0]),
        corra::columnar::temporal::format_epoch_days(rf.as_int().unwrap()[0]),
    );
}
