//! DMV hierarchical-encoding scenario (paper §2.2, Fig. 3): the (city, zip)
//! and (state, city) pairs, including automatic hierarchy detection.
//!
//! ```sh
//! cargo run --release --example dmv_hierarchy
//! ```

use corra::core::detect::detect_hierarchies;
use corra::datagen::{DmvParams, DmvTable};
use corra::prelude::*;

fn main() {
    let rows = 1_000_000;
    let table = DmvTable::generate(
        DmvParams {
            rows,
            ..Default::default()
        },
        11,
    )
    .into_table();
    println!("DMV registrations, {rows} rows (paper: 12,176,621)");

    // 1. Automatic hierarchy detection (the paper's future-work extension):
    //    scan column pairs for parent -> small-child-set structure.
    let cols: Vec<(&str, &corra::columnar::Column)> = table
        .schema()
        .fields()
        .iter()
        .map(|f| (f.name(), table.column(f.name()).unwrap()))
        .collect();
    let candidates = detect_hierarchies(&cols, 200_000).expect("detect");
    println!("\ndetected hierarchies (sampled):");
    for c in &candidates {
        println!(
            "  {} -> {}: max group {} of {} global distinct ({} -> {} bits/row)",
            cols[c.parent].0,
            cols[c.child].0,
            c.max_group,
            c.child_distinct,
            c.global_bits,
            c.hier_bits,
        );
    }

    // 2. Compress the two hierarchical pairs from the paper's Table 2.
    //    They are separate configurations: `city` cannot simultaneously be
    //    zip's reference and be diff-encoded itself (no chains, §2.1).
    let block = table.into_blocks(DEFAULT_BLOCK_ROWS).remove(0);
    let baseline = CompressedBlock::compress(&block, &CompressionConfig::baseline()).unwrap();
    let zip_cfg = CompressionConfig::baseline().with(
        "zip",
        ColumnPlan::Hier {
            reference: "city".into(),
        },
    );
    let city_cfg = CompressionConfig::baseline().with(
        "city",
        ColumnPlan::Hier {
            reference: "state".into(),
        },
    );
    let corra = CompressedBlock::compress(&block, &zip_cfg).unwrap();
    let corra_city = CompressedBlock::compress(&block, &city_cfg).unwrap();

    println!(
        "\n{:<8} {:>14} {:>14} {:>8}   (paper saving)",
        "column", "baseline", "corra", "saving"
    );
    for (col, comp, paper) in [("zip", &corra, "53.7%"), ("city", &corra_city, "1.8%")] {
        let b = baseline.column_bytes(col).unwrap();
        let c = comp.column_bytes(col).unwrap();
        println!(
            "{col:<8} {b:>12} B {c:>12} B {:>6.1}%   ({paper})",
            100.0 * (1.0 - c as f64 / b as f64)
        );
    }

    // 3. Verify Alg. 1 random access: zip values decode through the city
    //    dictionary code.
    let sel = SelectionVector::new(vec![0, 1_000, 999_999]);
    let zips = query_column(&corra, "zip", &sel).unwrap();
    let raw = block.column("zip").unwrap().as_i64().unwrap();
    assert_eq!(
        zips.as_int().unwrap(),
        &[raw[0], raw[1_000], raw[999_999]],
        "hierarchical random access must match raw data"
    );
    println!("\nAlg. 1 random access verified on 3 probes");

    // 4. Both-columns query: city strings + zips together.
    let (zip_out, city_out) = query_both(&corra, "zip", &sel).unwrap();
    println!(
        "both-columns query: ({}, {})",
        city_out.as_str_rows().unwrap()[0],
        zip_out.as_int().unwrap()[0],
    );
}
